//! The asynchronous admission front-end: open-loop arrivals for the
//! threaded runtime.
//!
//! The closed-loop executor ([`crate::runtime`]) drains a fixed job list
//! — useful for throughput, blind to queueing collapse, because a worker
//! only admits a job when it is free to run it. This module is the open
//! front door: *submitters* enqueue [`JobRequest`]s (template, release
//! time, absolute deadline) onto a bounded admission queue without ever
//! blocking on the lock manager; a *dispatcher* thread assigns instance
//! ids and feeds the worker pool; workers execute exactly the closed
//! loop's job body and report completions back over each submitter's own
//! completion channel. When the admission queue fills, the configured
//! [`AdmissionPolicy`] decides who loses.
//!
//! Time is wall-clock nanoseconds relative to the front-end's start
//! (`t0`). A job's life is stamped at four points — release (intended,
//! submitter-supplied), admission (entering the queue), start (a worker
//! picks it up) and commit — which split end-to-end latency into
//! *queueing delay* (admission → start) and *service latency* (start →
//! commit), and make the deadline verdict (`commit > deadline`?) a pure
//! observation. The resulting [`RtResult`] carries per-priority
//! deadline-miss ratios directly comparable with the simulator's miss
//! metrics.
//!
//! The whole front-end is scoped: [`run_front`] spawns dispatcher and
//! workers, hands the caller a [`FrontHandle`] to create submitters
//! from, and shuts down with *drain* semantics when the driver closure
//! returns — everything already admitted still executes, everything
//! submitted afterwards bounces.

use crate::admission::{AdmissionPolicy, AdmissionQueue, Admitted, FairnessConfig, Push};
use crate::histogram::LatencyHistogram;
use crate::manager::WorkerCtx;
use crate::runtime::{
    dur_ns, execute_job, merge_snapshot_jobs, snapshot_side, tenant_stats, JobReport, RtConfig,
    RtResult,
};
use crate::sharded::ShardedManager;
use crate::snapshot::SnapshotSide;
use rtdb_core::ProtocolKind;
use rtdb_types::{InstanceId, TransactionSet, TxnId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// One transaction request, as a submitter hands it to the front door.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobRequest {
    /// The template to instantiate (sequence numbers are assigned by the
    /// dispatcher in admission order).
    pub txn: TxnId,
    /// Intended release time, ns since the front-end's `t0`. Informational
    /// for the runtime — the submitter is responsible for not submitting
    /// before the release (open-loop generators sleep until it).
    pub release_ns: u64,
    /// Absolute deadline, ns since `t0`; `None` = no deadline tracking.
    pub deadline_ns: Option<u64>,
    /// The tenant this request is billed to under the fairness budgets
    /// (see [`FairnessConfig`]). Tenant ids are small dense integers;
    /// `0` is the default tenant.
    pub tenant: u32,
}

impl JobRequest {
    /// A request with release `0`, no deadline, tenant `0`.
    pub fn new(txn: TxnId) -> Self {
        JobRequest {
            txn,
            release_ns: 0,
            deadline_ns: None,
            tenant: 0,
        }
    }

    /// Set the intended release time.
    pub fn released_at(mut self, release_ns: u64) -> Self {
        self.release_ns = release_ns;
        self
    }

    /// Set the absolute deadline.
    pub fn with_deadline(mut self, deadline_ns: u64) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }

    /// Bill this request to `tenant`.
    pub fn for_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// The paper's periodic-transaction convention: deadline = release +
    /// period, with the template's period (in ticks) scaled to wall-clock
    /// nanoseconds by `ns_per_tick` — use the same scale as
    /// [`RtConfig::tick_ns`] so deadlines and simulated computation agree.
    /// A zero scale yields `deadline == release`, i.e. every job misses;
    /// callers that want no tracking should use [`JobRequest::new`].
    pub fn periodic(set: &TransactionSet, txn: TxnId, release_ns: u64, ns_per_tick: u64) -> Self {
        let period = set.template(txn).period.raw();
        JobRequest {
            txn,
            release_ns,
            deadline_ns: Some(release_ns.saturating_add(period.saturating_mul(ns_per_tick))),
            tenant: 0,
        }
    }
}

/// Configuration of one [`run_front`].
#[derive(Clone, Copy, Debug)]
pub struct FrontConfig {
    /// The worker-pool configuration (protocol, threads, tick scale,
    /// park timeout).
    pub rt: RtConfig,
    /// Admission-queue bound (clamped to at least 1).
    pub capacity: usize,
    /// What happens to new requests when the queue is full.
    pub policy: AdmissionPolicy,
    /// Per-tenant token-bucket fairness budgets; `None` (the default)
    /// disables tenant accounting and makes shed decisions pure
    /// least-slack.
    pub fairness: Option<FairnessConfig>,
}

impl FrontConfig {
    /// Defaults: [`RtConfig::new`], capacity 1024, [`AdmissionPolicy::Block`],
    /// fairness off.
    pub fn new(kind: ProtocolKind) -> Self {
        FrontConfig {
            rt: RtConfig::new(kind),
            capacity: 1024,
            policy: AdmissionPolicy::Block,
            fairness: None,
        }
    }

    /// Replace the worker-pool configuration.
    pub fn with_rt(mut self, rt: RtConfig) -> Self {
        self.rt = rt;
        self
    }

    /// Set the admission-queue bound.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Set the admission policy.
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enable per-tenant fairness budgets.
    pub fn with_fairness(mut self, fairness: FairnessConfig) -> Self {
        self.fairness = Some(fairness);
        self
    }
}

/// What [`Submitter::submit`] told the submitter, synchronously.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted; a [`Completion`] carrying this ticket will arrive on the
    /// submitter's channel (unless the job is later shed).
    Admitted {
        /// The submission ticket.
        ticket: u64,
    },
    /// Bounced by a full queue under [`AdmissionPolicy::Reject`].
    Rejected,
    /// Shed synchronously under [`AdmissionPolicy::LeastSlack`]: the
    /// incoming request itself had the least remaining slack, so it never
    /// entered the queue and no [`Completion`] will arrive for it.
    Shed {
        /// The submission ticket (burned; counted in [`RtResult::shed`]).
        ticket: u64,
    },
    /// Bounced because the front-end has shut down.
    Closed,
}

/// What arrives on a submitter's completion channel.
#[derive(Debug)]
pub enum Completion {
    /// The job committed; the full per-job report.
    Committed {
        /// Ticket of the originating [`Submitter::submit`] call.
        ticket: u64,
        /// The same report that appears in [`RtResult::jobs`].
        report: JobReport,
    },
    /// The job was shed from the admission queue to make room
    /// ([`AdmissionPolicy::ShedOldest`] / [`AdmissionPolicy::LeastSlack`]);
    /// it never ran.
    Shed {
        /// Ticket of the originating [`Submitter::submit`] call.
        ticket: u64,
        /// The template that was requested.
        txn: TxnId,
    },
}

/// Shared front-end state the handle and submitters reference.
struct FrontShared {
    t0: Instant,
    policy: AdmissionPolicy,
    queue: AdmissionQueue,
    tickets: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    /// Estimated service cost per template (WCET × tick), the fairness
    /// ledger's charge unit.
    costs: Vec<u64>,
}

/// The caller's view of a running front-end (see [`run_front`]).
/// `Copy`, `Send` and `Sync`: drivers may fan it out across their own
/// scoped submitter threads.
#[derive(Clone, Copy)]
pub struct FrontHandle<'e> {
    shared: &'e FrontShared,
}

impl<'e> FrontHandle<'e> {
    /// Nanoseconds since the front-end started — the clock `release_ns`
    /// and `deadline_ns` are measured on.
    pub fn elapsed_ns(&self) -> u64 {
        dur_ns(self.shared.t0.elapsed())
    }

    /// Requests currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Create a submitter with its own completion channel.
    pub fn submitter(&self) -> (Submitter<'e>, Receiver<Completion>) {
        let (done, rx) = channel();
        (
            Submitter {
                shared: self.shared,
                done,
            },
            rx,
        )
    }
}

/// One producer of [`JobRequest`]s. Completions for everything this
/// submitter admitted arrive on the [`Receiver`] returned alongside it.
pub struct Submitter<'e> {
    shared: &'e FrontShared,
    done: Sender<Completion>,
}

impl Submitter<'_> {
    /// Submit one request. Blocks only under [`AdmissionPolicy::Block`]
    /// on a full queue; never blocks on the lock manager.
    pub fn submit(&self, req: JobRequest) -> SubmitOutcome {
        self.push(req, self.shared.policy)
    }

    /// Submit one request, never blocking: [`AdmissionPolicy::Block`] is
    /// demoted to [`AdmissionPolicy::Reject`] for this call. The network
    /// event loop submits through this — a full queue must bounce a
    /// frame, not park the loop.
    pub fn try_submit(&self, req: JobRequest) -> SubmitOutcome {
        let policy = match self.shared.policy {
            AdmissionPolicy::Block => AdmissionPolicy::Reject,
            p => p,
        };
        self.push(req, policy)
    }

    fn push(&self, req: JobRequest, policy: AdmissionPolicy) -> SubmitOutcome {
        let ticket = self.shared.tickets.fetch_add(1, Ordering::Relaxed);
        let cost_ns = self.shared.costs.get(req.txn.index()).copied().unwrap_or(0);
        let item = Admitted {
            req,
            ticket,
            admitted_at: Instant::now(),
            cost_ns,
            done: self.done.clone(),
        };
        match self.shared.queue.push(item, policy) {
            Push::Admitted => SubmitOutcome::Admitted { ticket },
            Push::AdmittedShed(old) => {
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                let _ = old.done.send(Completion::Shed {
                    ticket: old.ticket,
                    txn: old.req.txn,
                });
                SubmitOutcome::Admitted { ticket }
            }
            Push::SelfShed => {
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Shed { ticket }
            }
            Push::Rejected => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Rejected
            }
            Push::Closed => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Closed
            }
        }
    }

    /// Nanoseconds since the front-end started.
    pub fn elapsed_ns(&self) -> u64 {
        dur_ns(self.shared.t0.elapsed())
    }
}

/// A dispatched job: an admitted request with its instance id assigned.
struct Dispatched {
    id: InstanceId,
    job: Admitted,
}

/// The tightly bounded dispatcher→worker hand-off. Its capacity is the
/// worker count, so backlog accumulates in the *admission* queue — the
/// place where the policy applies — not here.
struct DispatchQueue {
    inner: Mutex<(VecDeque<Dispatched>, bool)>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl DispatchQueue {
    fn new(capacity: usize) -> Self {
        DispatchQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, (VecDeque<Dispatched>, bool)> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Blocking push; only the dispatcher calls this, and it closes the
    /// queue afterwards, so a push never races a close.
    fn push(&self, item: Dispatched) {
        let mut g = self.lock();
        while g.0.len() >= self.capacity {
            g = self
                .not_full
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        g.0.push_back(item);
        self.not_empty.notify_one();
    }

    fn pop(&self) -> Option<Dispatched> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.0.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if g.1 {
                return None;
            }
            g = self
                .not_empty
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn close(&self) {
        let mut g = self.lock();
        g.1 = true;
        self.not_empty.notify_all();
    }
}

/// FIFO bridge from the admission queue to the worker pool: assigns each
/// template's sequence numbers in admission order (so a single-threaded,
/// block-policy replay reproduces exactly the instance sequence it was
/// fed — the property the sim-differential test leans on).
fn dispatcher(set: &TransactionSet, admission: &AdmissionQueue, dispatch: &DispatchQueue) {
    let mut next_seq = vec![0u32; set.len()];
    while let Some(job) = admission.pop() {
        let txn = job.req.txn;
        let seq = next_seq[txn.index()];
        next_seq[txn.index()] += 1;
        dispatch.push(Dispatched {
            id: InstanceId::new(txn, seq),
            job,
        });
    }
    dispatch.close();
}

#[allow(clippy::too_many_arguments)]
fn front_worker(
    set: &TransactionSet,
    manager: &ShardedManager<'_>,
    snap: Option<&SnapshotSide>,
    dispatch: &DispatchQueue,
    reports: &Mutex<Vec<JobReport>>,
    config: &RtConfig,
    worker_index: usize,
    t0: Instant,
) -> LatencyHistogram {
    let mut ctx = WorkerCtx::new(worker_index);
    let mut hist = LatencyHistogram::new();
    while let Some(d) = dispatch.pop() {
        let started = Instant::now();
        let stats = execute_job(set, manager, snap, d.id, &mut ctx, config);
        let committed = Instant::now();
        let latency_ns = dur_ns(committed.duration_since(d.job.admitted_at));
        hist.record(latency_ns);
        let report = JobReport {
            id: d.id,
            priority: set.priority_of(d.id.txn),
            latency_ns,
            queue_ns: dur_ns(started.duration_since(d.job.admitted_at)),
            service_ns: dur_ns(committed.duration_since(started)),
            release_ns: d.job.req.release_ns,
            tenant: d.job.req.tenant,
            deadline_ns: d.job.req.deadline_ns,
            commit_ns: dur_ns(committed.duration_since(t0)),
            restarts: stats.restarts,
            block_events: stats.block_events,
            lower_blockers: stats.lower_blockers,
            commit_index: stats.commit_index,
            snapshot: stats.snapshot,
        };
        reports
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(report.clone());
        let _ = d.job.done.send(Completion::Committed {
            ticket: d.job.ticket,
            report,
        });
    }
    hist
}

/// Run an admission front-end: spawn `config.rt.threads` workers and a
/// dispatcher, call `driver` with a [`FrontHandle`] on the current
/// thread, and shut down with drain semantics when it returns (admitted
/// jobs still execute; later submissions observe [`SubmitOutcome::Closed`]).
/// Returns the run's [`RtResult`] — commit-ordered job reports with
/// queueing/service split and deadline verdicts, shed/reject counts, the
/// full history and database — together with the driver's return value.
pub fn run_front<R>(
    set: &TransactionSet,
    config: FrontConfig,
    driver: impl FnOnce(FrontHandle<'_>) -> R,
) -> (RtResult, R) {
    let threads = config.rt.threads.max(1);
    let snap = snapshot_side(set, &config.rt);
    let manager = ShardedManager::new(set, &config.rt, snap.clone());
    let shards = manager.shard_count();
    let dispatch = DispatchQueue::new(threads);
    let reports: Mutex<Vec<JobReport>> = Mutex::new(Vec::new());
    let t0 = Instant::now();
    let shared = FrontShared {
        t0,
        policy: config.policy,
        queue: AdmissionQueue::new(config.capacity, set.len(), t0, config.fairness),
        tickets: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        costs: (0..set.len())
            .map(|i| {
                set.template(TxnId(i as u32))
                    .wcet()
                    .raw()
                    .saturating_mul(config.rt.tick_ns.max(1))
            })
            .collect(),
    };

    let (value, latency_hist) = std::thread::scope(|scope| {
        let manager = &manager;
        let dispatch = &dispatch;
        let reports = &reports;
        let rt_config = &config.rt;
        let t0 = shared.t0;
        let workers: Vec<_> = (0..threads)
            .map(|w| {
                let snap = snap.as_deref();
                scope.spawn(move || {
                    front_worker(set, manager, snap, dispatch, reports, rt_config, w, t0)
                })
            })
            .collect();
        let disp = scope.spawn(|| dispatcher(set, &shared.queue, dispatch));

        // Run the driver on this thread; if it panics the queues must
        // still close, or the scope would join parked workers forever.
        let value = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            driver(FrontHandle { shared: &shared })
        }));
        shared.queue.close();
        disp.join().expect("dispatcher panicked");
        let mut hist = LatencyHistogram::new();
        for w in workers {
            hist.merge(&w.join().expect("worker panicked"));
        }
        match value {
            Ok(v) => (v, hist),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    });
    let elapsed = shared.t0.elapsed();

    let sharded = manager.finish();
    let mut report = sharded.report;
    let jobs = reports
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (jobs, snapshots, mv_high_water) =
        merge_snapshot_jobs(jobs, snap.as_deref(), &mut report.history, report.commits);
    let (tenant_counts, shed_by_txn) = shared.queue.counters();
    let tenants = tenant_stats(&jobs, &tenant_counts);

    (
        RtResult {
            protocol: config.rt.kind.name().to_string(),
            kind: config.rt.kind,
            manager: config.rt.manager,
            threads,
            history: report.history,
            db: report.db,
            committed: report.commits + snapshots,
            restarts: report.restarts,
            abort_reasons: report.abort_reasons,
            deadlocks_resolved: report.deadlocks_resolved,
            elapsed,
            jobs,
            shed: shared.shed.load(Ordering::Relaxed),
            rejected: shared.rejected.load(Ordering::Relaxed),
            tenants,
            shed_by_txn,
            latency_hist,
            park_timeout_wakeups: report.park_timeout_wakeups,
            combiner: report.combiner,
            snapshot_reads: snap.is_some(),
            snapshots,
            lock_transitions: report.lock_transitions,
            mv_high_water,
            shards,
            cross_shard_txns: sharded.cross_shard_txns,
            per_shard: sharded.per_shard,
        },
        value,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::{SetBuilder, Step, TransactionTemplate};

    fn small_set() -> TransactionSet {
        SetBuilder::new()
            .with(TransactionTemplate::new(
                "hi",
                10,
                vec![Step::read(rtdb_types::ItemId(0), 1), Step::compute(1)],
            ))
            .with(TransactionTemplate::new(
                "lo",
                100,
                vec![Step::write(rtdb_types::ItemId(0), 1), Step::compute(1)],
            ))
            .build()
            .expect("set")
    }

    #[test]
    fn submitted_jobs_run_and_complete() {
        let set = small_set();
        let config = FrontConfig::new(ProtocolKind::PcpDa);
        let (result, tickets) = run_front(&set, config, |front| {
            let (sub, rx) = front.submitter();
            let mut tickets = Vec::new();
            for i in 0..6u32 {
                match sub.submit(JobRequest::new(TxnId(i % 2))) {
                    SubmitOutcome::Admitted { ticket } => tickets.push(ticket),
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
            // Completions for all six arrive even before shutdown.
            let mut done = Vec::new();
            for _ in 0..6 {
                match rx.recv().expect("completion") {
                    Completion::Committed { ticket, report } => {
                        assert_eq!(report.queue_ns + report.service_ns, report.latency_ns);
                        done.push(ticket);
                    }
                    Completion::Shed { .. } => panic!("nothing sheds under Block"),
                }
            }
            done.sort_unstable();
            (tickets, done)
        });
        let (submitted, completed) = tickets;
        assert_eq!(submitted, completed);
        assert_eq!(result.committed, 6);
        assert_eq!(result.shed, 0);
        assert_eq!(result.rejected, 0);
        assert_eq!(result.jobs.len(), 6);
        assert_eq!(result.latency_hist.count(), 6);
        // No deadlines were set, so nothing can miss.
        assert_eq!(result.deadline_misses(), 0);
    }

    #[test]
    fn submissions_after_shutdown_bounce() {
        let set = small_set();
        let (result, outcome) = run_front(&set, FrontConfig::new(ProtocolKind::TwoPlHp), |front| {
            let (sub, _rx) = front.submitter();
            sub.submit(JobRequest::new(TxnId(0)));
            front.shared.queue.close();
            sub.submit(JobRequest::new(TxnId(0)))
        });
        assert_eq!(outcome, SubmitOutcome::Closed);
        assert_eq!(result.committed, 1);
        assert_eq!(result.rejected, 1);
    }

    #[test]
    fn shed_oldest_notifies_the_shed_submitter() {
        let set = small_set();
        // Capacity 1, huge tick_ns on a 1-thread pool: the first job owns
        // the worker long enough that subsequent submissions contend for
        // the single queue slot deterministically.
        let config = FrontConfig::new(ProtocolKind::PcpDa)
            .with_capacity(1)
            .with_policy(AdmissionPolicy::ShedOldest)
            .with_rt(
                RtConfig::new(ProtocolKind::PcpDa)
                    .with_threads(1)
                    .with_tick_ns(2_000_000),
            );
        let (result, sheds) = run_front(&set, config, |front| {
            let (sub, rx) = front.submitter();
            for _ in 0..8 {
                sub.submit(JobRequest::new(TxnId(1)));
            }
            drop(sub);
            let mut sheds = 0u64;
            while let Ok(c) = rx.recv() {
                if let Completion::Shed { txn, .. } = c {
                    assert_eq!(txn, TxnId(1));
                    sheds += 1;
                }
            }
            sheds
        });
        assert_eq!(result.shed, sheds);
        assert_eq!(result.committed + result.shed, 8);
        assert!(result.shed > 0, "8 submissions through a 1-slot queue shed");
    }
}
