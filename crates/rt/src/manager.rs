//! The concurrent lock manager.
//!
//! One global [`Mutex`] guards the protocol state (lock table, ceilings,
//! inheritance, per-instance bookkeeping, database, history); every
//! protocol decision, data operation and commit happens inside it, so the
//! runtime linearizes the exact state machine the simulator executes —
//! only the *order* of requests differs (it is decided by the OS
//! scheduler instead of the simulated priority dispatcher).
//!
//! Blocked threads park on a per-waiter [`Condvar`] associated with the
//! shared mutex. Wake-ups mirror the simulator's `reevaluate`: whenever a
//! lock is released (commit, abort, early release) or a new blocking edge
//! appears, every parked request is re-presented to the protocol in
//! descending running-priority order, and waiters whose requests would
//! now be granted are woken; the actual grant happens when the woken
//! thread re-issues its request, exactly as the simulator's woken
//! instances re-request at dispatch. Parks additionally carry a timeout:
//! on expiry the waiter runs a re-evaluation pass itself and, if it is
//! still blocked, a deadlock sweep — a safety net that keeps the runtime
//! live even for wait-for cycles that form without a new block event
//! (possible here because blocker sets are refreshed while several
//! threads run truly concurrently).
//!
//! Deadlock cycles are detected on the wait-for graph at block time (as
//! in the simulator) and always resolved by aborting the lowest-base-
//! priority instance on the cycle: a real runtime cannot stop the world
//! and report `RunOutcome::Deadlock` the way a simulation can.

use rtdb_core::{
    CeilingTable, Decision, EngineView, LockRequest, LockTable, PriorityManager, ProtocolFor,
    ProtocolKind, UpdateModel, WaitForGraph,
};
use rtdb_sim::{instantiate, AnyProtocol};
use rtdb_storage::{Database, EventKind, History, Workspace};
use rtdb_types::{InstanceId, ItemId, LockMode, Priority, Tick, TransactionSet, TxnId};
use std::cmp::Reverse;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Default park timeout (see [`crate::RtConfig::park_timeout`]): the
/// lost-wakeup / late-cycle safety net. Long enough to never matter on
/// the fast path, short enough to keep worst-case recovery invisible in
/// tests.
pub(crate) const DEFAULT_PARK_TIMEOUT: Duration = Duration::from_millis(25);

/// What a manager call tells the worker to do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Outcome {
    /// The operation happened; continue with the job.
    Done,
    /// The instance was aborted (deadlock victim, 2PL-HP wound, OCC
    /// invalidation); reset the workspace and restart from step 0.
    Restart,
}

/// Per-job statistics handed back at commit.
#[derive(Clone, Debug, Default)]
pub(crate) struct JobStats {
    /// Zero-based position in the global commit order.
    pub commit_index: u64,
    /// Times this job was aborted and restarted.
    pub restarts: u32,
    /// Times this job blocked (parked) on a lock request.
    pub block_events: u32,
    /// Distinct lower-priority templates that ever blocked this job —
    /// the measurable form of the paper's single-blocking property.
    pub lower_blockers: Vec<TxnId>,
}

/// Result of a commit attempt.
pub(crate) enum CommitOutcome {
    Committed(JobStats),
    Restart,
}

/// Everything the manager accumulated, returned by [`LockManager::finish`].
pub(crate) struct ManagerReport {
    pub history: History,
    pub db: Database,
    pub commits: u64,
    pub restarts: u64,
    pub deadlocks_resolved: u64,
}

/// Per-live-instance bookkeeping the protocols observe through
/// [`EngineView`]. The `data_read`/`staged` mirrors are updated in the
/// same critical section as the grant and the data operation, so the view
/// other threads' decisions see is always consistent.
struct Meta {
    id: InstanceId,
    cv: Arc<Condvar>,
    /// The denied request this instance is parked on, if any.
    pending: Option<LockRequest>,
    /// Set by a re-evaluation that would now grant `pending`.
    woken: bool,
    /// Set by [`Shared::abort_victim`]; consumed by the owning worker.
    aborted: bool,
    /// Mirror of the workspace's `data_read` set, sorted.
    data_read: Vec<ItemId>,
    /// Mirror of the workspace's staged-write item set, sorted.
    staged: Vec<ItemId>,
    /// Items already installed by an early release (CCP), sorted.
    installed_early: Vec<ItemId>,
    lower_blockers: Vec<TxnId>,
    block_events: u32,
    restarts: u32,
}

impl Meta {
    fn new(id: InstanceId) -> Self {
        Meta {
            id,
            cv: Arc::new(Condvar::new()),
            pending: None,
            woken: false,
            aborted: false,
            data_read: Vec::new(),
            staged: Vec::new(),
            installed_early: Vec::new(),
            lower_blockers: Vec::new(),
            block_events: 0,
            restarts: 0,
        }
    }

    fn note_lower_blocker(&mut self, txn: TxnId) {
        if let Err(i) = self.lower_blockers.binary_search(&txn) {
            self.lower_blockers.insert(i, txn);
        }
    }

    /// Record an early install of `item`; `true` if new.
    fn mark_installed_early(&mut self, item: ItemId) -> bool {
        match self.installed_early.binary_search(&item) {
            Ok(_) => false,
            Err(i) => {
                self.installed_early.insert(i, item);
                true
            }
        }
    }
}

/// The [`EngineView`] the protocols consult, shared across workers.
struct RtView<'a> {
    set: &'a TransactionSet,
    ceilings: CeilingTable,
    locks: LockTable,
    pm: PriorityManager,
    /// Live instances, sorted ascending by id.
    active: Vec<InstanceId>,
    /// Parallel per-instance bookkeeping, sorted by `Meta::id`.
    metas: Vec<Meta>,
}

impl RtView<'_> {
    #[inline]
    fn meta_idx(&self, who: InstanceId) -> Option<usize> {
        self.metas.binary_search_by_key(&who, |m| m.id).ok()
    }

    #[inline]
    fn meta(&self, who: InstanceId) -> &Meta {
        &self.metas[self.meta_idx(who).expect("instance is live")]
    }

    #[inline]
    fn meta_mut(&mut self, who: InstanceId) -> &mut Meta {
        let i = self.meta_idx(who).expect("instance is live");
        &mut self.metas[i]
    }

    fn is_active(&self, who: InstanceId) -> bool {
        self.meta_idx(who).is_some()
    }
}

impl EngineView for RtView<'_> {
    fn set(&self) -> &TransactionSet {
        self.set
    }
    fn locks(&self) -> &LockTable {
        &self.locks
    }
    fn ceilings(&self) -> &CeilingTable {
        &self.ceilings
    }
    fn base_priority(&self, who: InstanceId) -> Priority {
        self.set.priority_of(who.txn)
    }
    fn running_priority(&self, who: InstanceId) -> Priority {
        self.pm.running(who)
    }
    fn data_read(&self, who: InstanceId) -> &[ItemId] {
        self.meta_idx(who)
            .map_or(&[], |i| self.metas[i].data_read.as_slice())
    }
    fn pending_request(&self, who: InstanceId) -> Option<LockRequest> {
        self.meta_idx(who).and_then(|i| self.metas[i].pending)
    }
    fn active_instances(&self) -> &[InstanceId] {
        &self.active
    }
    fn staged_write_items(&self, who: InstanceId) -> Vec<ItemId> {
        self.meta_idx(who)
            .map_or_else(Vec::new, |i| self.metas[i].staged.clone())
    }
}

/// The mutex-guarded heart of the runtime.
struct Shared<'a> {
    view: RtView<'a>,
    protocol: AnyProtocol,
    kind: ProtocolKind,
    db: Database,
    history: History,
    /// Logical event clock: history ticks order events for readers of the
    /// log; correctness oracles never compare tick values across runs.
    now: u64,
    commits: u64,
    restarts: u64,
    deadlocks_resolved: u64,
    reeval_scratch: Vec<InstanceId>,
}

/// What [`Shared::try_acquire`] told the caller.
enum TryAcquire {
    /// Granted (or already covered); the data operation happened.
    Done,
    /// State changed (victims aborted); retry the request immediately.
    Retry,
    /// Blocked; park on the returned condvar.
    Park(Arc<Condvar>),
}

impl<'a> Shared<'a> {
    #[inline]
    fn tick(&mut self) -> Tick {
        self.now += 1;
        Tick(self.now)
    }

    fn take_abort(&mut self, who: InstanceId) -> bool {
        let m = self.view.meta_mut(who);
        if m.aborted {
            m.aborted = false;
            m.woken = false;
            true
        } else {
            false
        }
    }

    /// Perform the granted data operation through the worker's private
    /// workspace and refresh the mirrors the protocols observe.
    fn perform_op(
        &mut self,
        who: InstanceId,
        step_index: usize,
        item: ItemId,
        mode: LockMode,
        ws: &mut Workspace,
    ) {
        let at = self.tick();
        let Shared {
            view, db, history, ..
        } = self;
        match mode {
            LockMode::Read => {
                let rec = ws.read(db, item);
                history.push(
                    at,
                    who,
                    EventKind::Read {
                        item,
                        value: rec.value,
                        version: rec.version,
                        own: rec.own,
                    },
                );
                let m = view.meta_mut(who);
                m.data_read.clear();
                m.data_read.extend_from_slice(ws.data_read());
            }
            LockMode::Write => {
                let value = ws.write(step_index, item);
                history.push(at, who, EventKind::StageWrite { item, value });
                let m = view.meta_mut(who);
                if let Err(i) = m.staged.binary_search(&item) {
                    m.staged.insert(i, item);
                }
            }
        }
    }

    fn try_acquire(
        &mut self,
        who: InstanceId,
        step_index: usize,
        item: ItemId,
        mode: LockMode,
        ws: &mut Workspace,
    ) -> TryAcquire {
        // Clear a stale wake flag from a previous round.
        self.view.meta_mut(who).woken = false;

        if self.view.locks.covers(who, item, mode) {
            self.perform_op(who, step_index, item, mode, ws);
            return TryAcquire::Done;
        }

        let req = LockRequest { who, item, mode };
        let decision = {
            let Shared { view, protocol, .. } = self;
            protocol.request(view, req)
        };
        match decision {
            Decision::Grant => {
                self.view.locks.grant(who, item, mode);
                {
                    let Shared { view, protocol, .. } = self;
                    protocol.on_grant(view, req);
                }
                self.perform_op(who, step_index, item, mode, ws);
                TryAcquire::Done
            }
            Decision::AbortHolders { victims } => {
                for v in victims {
                    if v != who {
                        self.abort_victim(v);
                    }
                }
                self.reevaluate();
                TryAcquire::Retry
            }
            Decision::Block { blockers } => {
                self.block(who, req, &blockers);
                // A new blocking edge can itself unblock others (PCP-DA's
                // commit-order guard); give every parked request a pass
                // before testing for a deadlock.
                self.reevaluate();
                if self.view.meta(who).pending.is_some() {
                    self.resolve_deadlocks();
                }
                match &self.view.meta(who) {
                    m if m.aborted || m.woken || m.pending.is_none() => TryAcquire::Retry,
                    m => TryAcquire::Park(m.cv.clone()),
                }
            }
        }
    }

    fn block(&mut self, who: InstanceId, req: LockRequest, blockers: &[InstanceId]) {
        let my_base = self.view.set.priority_of(who.txn);
        {
            let RtView { set, .. } = self.view;
            let m = self.view.meta_mut(who);
            debug_assert!(m.pending.is_none());
            m.pending = Some(req);
            m.block_events += 1;
            for &b in blockers {
                if set.priority_of(b.txn) < my_base {
                    m.note_lower_blocker(b.txn);
                }
            }
        }
        self.view.pm.set_blocked(who, blockers);
    }

    /// Mirror of the simulator's `reevaluate`: re-present every parked
    /// request in descending running-priority order; wake those that would
    /// now be granted (the grant itself happens when the woken thread
    /// re-issues the request), refresh the blocking edges of the rest.
    fn reevaluate(&mut self) {
        let mut blocked = std::mem::take(&mut self.reeval_scratch);
        blocked.clear();
        blocked.extend(
            self.view
                .metas
                .iter()
                .filter(|m| m.pending.is_some())
                .map(|m| m.id),
        );
        blocked.sort_by_key(|&id| {
            Reverse((
                self.view.pm.running(id),
                self.view.set.priority_of(id.txn),
                Reverse(id.seq),
            ))
        });
        for &who in &blocked {
            let Some(req) = self.view.meta(who).pending else {
                continue; // woken or aborted earlier in this pass
            };
            let decision = {
                let Shared { view, protocol, .. } = self;
                protocol.request(view, req)
            };
            match decision {
                Decision::Grant | Decision::AbortHolders { .. } => self.wake(who),
                Decision::Block { blockers } => {
                    debug_assert!(!blockers.is_empty());
                    let my_base = self.view.set.priority_of(who.txn);
                    {
                        let RtView { set, .. } = self.view;
                        let m = self.view.meta_mut(who);
                        for &b in &blockers {
                            if set.priority_of(b.txn) < my_base {
                                m.note_lower_blocker(b.txn);
                            }
                        }
                    }
                    self.view.pm.set_blocked(who, &blockers);
                }
            }
        }
        self.reeval_scratch = blocked;
    }

    /// Clear `who`'s pending request and signal its thread.
    fn wake(&mut self, who: InstanceId) {
        self.view.pm.clear_blocked(who);
        let m = self.view.meta_mut(who);
        m.pending = None;
        m.woken = true;
        m.cv.notify_one();
    }

    /// Detect and resolve wait-for cycles by aborting the lowest-base-
    /// priority instance on each cycle until none remains.
    fn resolve_deadlocks(&mut self) {
        loop {
            let Some(cycle) = WaitForGraph::from_edges(self.view.pm.edges()).find_cycle() else {
                return;
            };
            let victim = cycle
                .iter()
                .copied()
                .min_by_key(|&v| (self.view.set.priority_of(v.txn), v))
                .expect("cycle is non-empty");
            self.deadlocks_resolved += 1;
            self.abort_victim(victim);
            self.reevaluate();
        }
    }

    /// Abort a live instance: release its locks, clear its protocol-visible
    /// state, flag its worker to restart. The victim's workspace is reset
    /// by the owning thread when it observes the flag; until then the
    /// cleared mirrors are what protocols see — the same state the
    /// simulator reaches by resetting the slot in place.
    fn abort_victim(&mut self, victim: InstanceId) {
        if !self.view.is_active(victim) {
            return; // committed between the decision and now — same mutex, so only via commit_victims listing a stale id
        }
        assert_eq!(
            self.kind.update_model(),
            UpdateModel::Workspace,
            "aborts require the workspace model (no undo implemented)"
        );
        let at = self.tick();
        self.history.push(at, victim, EventKind::Abort);
        self.view.locks.release_all(victim);
        self.view.pm.clear_blocked(victim);
        {
            let m = self.view.meta_mut(victim);
            m.pending = None;
            m.woken = false;
            m.aborted = true;
            m.data_read.clear();
            m.staged.clear();
            m.installed_early.clear();
            m.restarts += 1;
            m.cv.notify_one();
        }
        self.restarts += 1;
        {
            let Shared { view, protocol, .. } = self;
            protocol.on_abort(view, victim);
        }
        let at = self.tick();
        self.history.push(at, victim, EventKind::Begin);
    }
}

/// The concurrent lock manager: one per [`crate::run`] invocation, shared
/// by reference across the worker threads of that run.
pub(crate) struct LockManager<'a> {
    state: Mutex<Shared<'a>>,
    /// Park `wait_timeout` safety net (see [`crate::RtConfig::park_timeout`]).
    park_timeout: Duration,
}

impl<'a> LockManager<'a> {
    pub(crate) fn new(set: &'a TransactionSet, kind: ProtocolKind, park_timeout: Duration) -> Self {
        let ceilings = CeilingTable::new(set);
        let locks = LockTable::with_index(&ceilings);
        LockManager {
            park_timeout,
            state: Mutex::new(Shared {
                view: RtView {
                    set,
                    ceilings,
                    locks,
                    pm: PriorityManager::new(),
                    active: Vec::new(),
                    metas: Vec::new(),
                },
                protocol: instantiate(kind),
                kind,
                db: Database::new(),
                history: History::new(),
                now: 0,
                commits: 0,
                restarts: 0,
                deadlocks_resolved: 0,
                reeval_scratch: Vec::new(),
            }),
        }
    }

    /// Lock the shared state, recovering from poisoning (a panicking
    /// worker already fails the run via the scope join; secondary threads
    /// should not cascade with confusing poison panics).
    fn lock(&self) -> MutexGuard<'_, Shared<'a>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Register a released instance.
    pub(crate) fn begin(&self, id: InstanceId) {
        let mut g = self.lock();
        let base = g.view.set.priority_of(id.txn);
        let at = g.tick();
        match g.view.metas.binary_search_by_key(&id, |m| m.id) {
            Ok(_) => panic!("instance {id:?} begun twice"),
            Err(i) => g.view.metas.insert(i, Meta::new(id)),
        }
        match g.view.active.binary_search(&id) {
            Ok(_) => unreachable!(),
            Err(i) => g.view.active.insert(i, id),
        }
        g.view.pm.register(id, base);
        g.history.push(at, id, EventKind::Begin);
    }

    /// Acquire `item` in `mode` for step `step_index`, performing the data
    /// operation at grant time. Parks the calling thread while the
    /// protocol denies the request.
    pub(crate) fn acquire(
        &self,
        id: InstanceId,
        step_index: usize,
        item: ItemId,
        mode: LockMode,
        ws: &mut Workspace,
    ) -> Outcome {
        let mut g = self.lock();
        loop {
            if g.take_abort(id) {
                return Outcome::Restart;
            }
            match g.try_acquire(id, step_index, item, mode, ws) {
                TryAcquire::Done => return Outcome::Done,
                TryAcquire::Retry => continue,
                TryAcquire::Park(cv) => {
                    loop {
                        let (g2, timeout) = cv
                            .wait_timeout(g, self.park_timeout)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        g = g2;
                        let m = g.view.meta(id);
                        if m.aborted || m.woken || m.pending.is_none() {
                            break;
                        }
                        if timeout.timed_out() {
                            // Safety net: heal lost wake-ups and cycles
                            // that formed without a block event.
                            g.reevaluate();
                            if g.view.meta(id).pending.is_some() {
                                g.resolve_deadlocks();
                            }
                        }
                    }
                    // Retry (or observe the abort) at the top of the loop.
                }
            }
        }
    }

    /// Report step `completed_step` finished; applies the protocol's early
    /// releases (CCP) and re-evaluates waiters.
    pub(crate) fn step_done(
        &self,
        id: InstanceId,
        completed_step: usize,
        ws: &Workspace,
    ) -> Outcome {
        let mut g = self.lock();
        if g.take_abort(id) {
            return Outcome::Restart;
        }
        let releases = {
            let Shared { view, protocol, .. } = &mut *g;
            protocol.early_releases(view, id, completed_step)
        };
        if releases.is_empty() {
            return Outcome::Done;
        }
        let install_early = g.kind.update_model() == UpdateModel::InstallOnEarlyRelease;
        for (item, mode) in releases {
            debug_assert!(g.view.locks.holds(id, item, mode));
            g.view.locks.release(id, item, mode);
            if install_early && mode == LockMode::Write {
                if let Some(value) = ws.staged_value(item) {
                    if g.view.meta_mut(id).mark_installed_early(item) {
                        let at = g.tick();
                        let version = g.db.install(id, item, value, at);
                        g.history.push(
                            at,
                            id,
                            EventKind::Install {
                                item,
                                value,
                                version,
                            },
                        );
                    }
                }
            }
        }
        g.reevaluate();
        Outcome::Done
    }

    /// Commit: validate (OCC), install staged writes, release everything,
    /// wake waiters. Fails with [`CommitOutcome::Restart`] if the instance
    /// was aborted before the commit point.
    pub(crate) fn commit(&self, id: InstanceId, ws: &Workspace) -> CommitOutcome {
        let mut g = self.lock();
        if g.take_abort(id) {
            return CommitOutcome::Restart;
        }
        let victims = {
            let Shared { view, protocol, .. } = &mut *g;
            protocol.commit_victims(view, id)
        };
        for v in victims {
            if v != id {
                g.abort_victim(v);
            }
        }

        let at = g.tick();
        g.history.push(at, id, EventKind::Commit);
        {
            let Shared {
                view, db, history, ..
            } = &mut *g;
            let m = view.meta(id);
            for &(item, value) in ws.staged_writes() {
                if m.installed_early.binary_search(&item).is_ok() {
                    continue;
                }
                let version = db.install(id, item, value, at);
                history.push(
                    at,
                    id,
                    EventKind::Install {
                        item,
                        value,
                        version,
                    },
                );
            }
        }
        g.view.locks.release_all(id);
        g.view.pm.remove(id);
        {
            let Shared { view, protocol, .. } = &mut *g;
            protocol.on_commit(view, id);
        }

        let commit_index = g.commits;
        g.commits += 1;
        let stats = {
            let i = g.view.meta_idx(id).expect("committing instance is live");
            let meta = g.view.metas.remove(i);
            JobStats {
                commit_index,
                restarts: meta.restarts,
                block_events: meta.block_events,
                lower_blockers: meta.lower_blockers,
            }
        };
        if let Ok(i) = g.view.active.binary_search(&id) {
            g.view.active.remove(i);
        }
        g.reevaluate();
        CommitOutcome::Committed(stats)
    }

    /// Tear down after every worker joined, yielding the run's artifacts.
    pub(crate) fn finish(self) -> ManagerReport {
        let shared = self
            .state
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        debug_assert!(shared.view.active.is_empty(), "live instances at finish");
        ManagerReport {
            history: shared.history,
            db: shared.db,
            commits: shared.commits,
            restarts: shared.restarts,
            deadlocks_resolved: shared.deadlocks_resolved,
        }
    }
}
