//! The concurrent lock managers.
//!
//! Two interchangeable managers drive the identical protocol state
//! machine (the [`Shared`] core below):
//!
//! * [`MutexManager`] — one global [`Mutex`] guards the protocol state
//!   (lock table, ceilings, inheritance, per-instance bookkeeping,
//!   database, history); every protocol decision, data operation and
//!   commit happens inside it, so the runtime linearizes the exact state
//!   machine the simulator executes — only the *order* of requests
//!   differs (it is decided by the OS scheduler instead of the simulated
//!   priority dispatcher). Blocked threads park on per-waiter
//!   [`Condvar`]s; wake-ups mirror the simulator's `reevaluate`.
//! * [`crate::combining::CombiningManager`] — the flat-combining
//!   delegation manager: threads publish their operation into a
//!   publication slot and one *combiner* thread executes everyone's
//!   grant/deny/reevaluate decisions in a single cache-hot pass, in
//!   descending running-priority order (see `combining.rs` and DESIGN.md
//!   §6c "Delegation instead of sharding").
//!
//! The mutex manager is the semantic oracle for the combiner: every
//! differential, serializability and stress test runs against both
//! (selected by [`ManagerKind`] via [`crate::RtConfig`]).
//!
//! Deadlock cycles are detected on the wait-for graph at block time (as
//! in the simulator) and always resolved by aborting the lowest-base-
//! priority instance on the cycle: a real runtime cannot stop the world
//! and report `RunOutcome::Deadlock` the way a simulation can.

use crate::combining::{CombinerStats, CombiningManager, OpSlot, ParkedOp, Response};
use crate::snapshot::SnapshotSide;
use rtdb_core::{
    deadlock_victim, AbortBreakdown, AbortReason, CeilingTable, Decision, DepTracker, EngineView,
    GlobalCeiling, LockRequest, LockTable, PriorityManager, ProtocolFor, ProtocolKind, ShardRouter,
    UpdateModel, WaitForGraph,
};
use rtdb_sim::{instantiate, AnyProtocol};
use rtdb_storage::{Database, EventKind, History, VersionedValue, Workspace};
use rtdb_types::{InstanceId, ItemId, LockMode, Priority, Tick, TransactionSet, TxnId};
use std::cmp::Reverse;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Default park timeout (see [`crate::RtConfig::park_timeout`]): the
/// lost-wakeup / late-cycle safety net. Long enough to never matter on
/// the fast path, short enough to keep worst-case recovery invisible in
/// tests.
pub(crate) const DEFAULT_PARK_TIMEOUT: Duration = Duration::from_millis(25);

/// Manager tuning knobs threaded from [`crate::RtConfig`]: the park
/// timeout applies to both kinds, the fast-path retry budget and parked
/// grace spin only to the combining manager.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ManagerTuning {
    pub park_timeout: Duration,
    pub fast_retries: u32,
    pub park_grace: Duration,
}

/// Per-shard wiring of the [`Shared`] core. [`ShardCtx::single`] is the
/// classic unsharded configuration: a private clock and none of the
/// cross-shard machinery, so the state machine is bit-identical to the
/// pre-sharding manager.
pub(crate) struct ShardCtx {
    /// The run-global logical event clock, shared by every shard so the
    /// merged history can be rebuilt in tick order.
    pub clock: Arc<AtomicU64>,
    /// This shard's index.
    pub shard: usize,
    /// Item→shard routing (multi-shard runs only); used to filter the
    /// protocol-visible mirrors down to shard-owned items.
    pub router: Option<ShardRouter>,
    /// The published-per-shard global ceiling layer (multi-shard only).
    pub global: Option<Arc<GlobalCeiling>>,
    /// The commit gate: the run-global next-commit-index counter, locked
    /// around {commit tick, installs, snapshot publish} so commit ticks,
    /// commit indices and snapshot stamps agree across shards
    /// (multi-shard only; `None` keeps single-shard commits gate-free).
    pub gate: Option<Arc<Mutex<u64>>>,
}

impl ShardCtx {
    pub(crate) fn single() -> Self {
        ShardCtx {
            clock: Arc::new(AtomicU64::new(0)),
            shard: 0,
            router: None,
            global: None,
            gate: None,
        }
    }
}

/// Which lock-manager implementation mediates protocol state.
///
/// Both managers execute the identical [`rtdb_core::ProtocolFor`] decision
/// logic over the same shared state core; they differ only in *how*
/// threads reach that state. `Mutex` is the semantic oracle; `Combining`
/// is the delegation design built for the high-contention regime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ManagerKind {
    /// One global mutex, per-waiter condvar parking (the original
    /// manager and the differential oracle).
    #[default]
    Mutex,
    /// Flat-combining delegation: publication slots plus a single
    /// combiner pass executing all pending decisions in descending
    /// running-priority order.
    Combining,
}

impl ManagerKind {
    /// Both manager kinds, oracle first.
    pub const ALL: [ManagerKind; 2] = [ManagerKind::Mutex, ManagerKind::Combining];

    /// Short stable name, as used in `BENCH_rt.json` records.
    pub fn name(self) -> &'static str {
        match self {
            ManagerKind::Mutex => "mutex",
            ManagerKind::Combining => "combining",
        }
    }
}

impl std::fmt::Display for ManagerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ManagerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "mutex" | "lock" => Ok(ManagerKind::Mutex),
            "combining" | "combiner" | "fc" | "flat-combining" => Ok(ManagerKind::Combining),
            other => Err(format!(
                "unknown manager kind `{other}` (expected mutex or combining)"
            )),
        }
    }
}

/// What a manager call tells the worker to do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Outcome {
    /// The operation happened; continue with the job.
    Done,
    /// The instance was aborted (deadlock victim, 2PL-HP wound, OCC
    /// invalidation); reset the workspace and restart from step 0.
    Restart,
}

/// Per-job statistics handed back at commit.
#[derive(Clone, Debug, Default)]
pub(crate) struct JobStats {
    /// Zero-based position in the global commit order.
    pub commit_index: u64,
    /// Times this job was aborted and restarted.
    pub restarts: u32,
    /// Times this job blocked (parked) on a lock request.
    pub block_events: u32,
    /// Distinct lower-priority templates that ever blocked this job —
    /// the measurable form of the paper's single-blocking property.
    pub lower_blockers: Vec<TxnId>,
    /// Commit stamp for jobs that ran on the snapshot read path (their
    /// `commit_index` is an ordinal in the reader stream until the run's
    /// epilogue offsets it past the lock-path commits).
    pub snapshot: Option<u64>,
}

/// Result of a commit attempt.
pub(crate) enum CommitOutcome {
    Committed(JobStats),
    Restart,
}

/// Everything the manager accumulated, returned by [`LockManager::finish`].
pub(crate) struct ManagerReport {
    pub history: History,
    pub db: Database,
    pub commits: u64,
    pub restarts: u64,
    pub deadlocks_resolved: u64,
    /// Park-timeout safety-net firings (see [`crate::RtResult::park_timeout_wakeups`]).
    pub park_timeout_wakeups: u64,
    /// Combining-pass telemetry (all-zero under [`ManagerKind::Mutex`]).
    pub combiner: CombinerStats,
    /// Final value of the lock table's monotone state-transition counter
    /// — 0 means the run never granted, released or converted a single
    /// lock (the snapshot path's zero-lock assertion hook).
    pub lock_transitions: u64,
    /// Times this manager's state mutex was acquired (shard-isolation
    /// telemetry).
    pub state_lock_acquires: u64,
    /// Which shard produced this report (0 in unsharded runs).
    pub shard: usize,
    /// Why instances aborted, by cause; totals [`ManagerReport::restarts`].
    pub abort_reasons: AbortBreakdown,
}

/// Per-worker context threaded through every manager call: the recycled
/// private workspace plus (for the combining manager) the worker's
/// publication slot. One per worker thread, reused across jobs.
pub(crate) struct WorkerCtx {
    pub ws: Workspace,
    pub slot: Arc<OpSlot>,
    /// This worker's index in `0..threads` — its reader slot in the
    /// snapshot store's pin table.
    pub worker: usize,
    /// Cross-shard state of the job currently executing on this worker
    /// (`None` for single-shard jobs and unsharded runs).
    pub cross: Option<crate::sharded::CrossJob>,
}

impl WorkerCtx {
    pub(crate) fn new(worker: usize) -> Self {
        WorkerCtx {
            ws: Workspace::new(InstanceId::first(TxnId(0))),
            slot: Arc::new(OpSlot::new()),
            worker,
            cross: None,
        }
    }
}

/// Per-live-instance bookkeeping the protocols observe through
/// [`EngineView`]. The `data_read`/`staged` mirrors are updated in the
/// same critical section as the grant and the data operation, so the view
/// other threads' decisions see is always consistent.
pub(crate) struct Meta {
    pub(crate) id: InstanceId,
    pub(crate) cv: Arc<Condvar>,
    /// The denied request this instance is parked on, if any.
    pub(crate) pending: Option<LockRequest>,
    /// Set by a re-evaluation that would now grant `pending`.
    pub(crate) woken: bool,
    /// Set by [`Shared::abort_victim`]; consumed by the owning worker.
    pub(crate) aborted: bool,
    /// The parked acquire operation awaiting a combiner decision
    /// (combining manager only; the mutex manager parks the *thread*
    /// instead).
    pub(crate) parked: Option<ParkedOp>,
    /// Mirror of the workspace's `data_read` set, sorted.
    pub(crate) data_read: Vec<ItemId>,
    /// Mirror of the workspace's staged-write item set, sorted.
    pub(crate) staged: Vec<ItemId>,
    /// Items already installed by an early release (CCP), sorted.
    pub(crate) installed_early: Vec<ItemId>,
    pub(crate) lower_blockers: Vec<TxnId>,
    pub(crate) block_events: u32,
    pub(crate) restarts: u32,
    /// Cross-shard abort signal (multi-shard runs only): set instead of
    /// `aborted` when this instance spans shards, because its owner never
    /// parks inside any one shard and polls this flag at the sharded
    /// manager's entry points instead. Shared with every shard the
    /// instance registered in.
    pub(crate) signal: Option<Arc<AtomicBool>>,
}

impl Meta {
    fn new(id: InstanceId) -> Self {
        Meta {
            id,
            cv: Arc::new(Condvar::new()),
            pending: None,
            woken: false,
            aborted: false,
            parked: None,
            data_read: Vec::new(),
            staged: Vec::new(),
            installed_early: Vec::new(),
            lower_blockers: Vec::new(),
            block_events: 0,
            restarts: 0,
            signal: None,
        }
    }

    fn note_lower_blocker(&mut self, txn: TxnId) {
        if let Err(i) = self.lower_blockers.binary_search(&txn) {
            self.lower_blockers.insert(i, txn);
        }
    }

    /// Record an early install of `item`; `true` if new.
    fn mark_installed_early(&mut self, item: ItemId) -> bool {
        match self.installed_early.binary_search(&item) {
            Ok(_) => false,
            Err(i) => {
                self.installed_early.insert(i, item);
                true
            }
        }
    }
}

/// The [`EngineView`] the protocols consult, shared across workers.
pub(crate) struct RtView<'a> {
    pub(crate) set: &'a TransactionSet,
    pub(crate) ceilings: CeilingTable,
    pub(crate) locks: LockTable,
    pub(crate) pm: PriorityManager,
    /// Live instances, sorted ascending by id.
    pub(crate) active: Vec<InstanceId>,
    /// Parallel per-instance bookkeeping, sorted by `Meta::id`.
    pub(crate) metas: Vec<Meta>,
    /// Retired-lock chains and commit dependencies (the early-release
    /// protocols' dependency tracker; empty for every other kind).
    pub(crate) deps: DepTracker,
}

impl RtView<'_> {
    #[inline]
    pub(crate) fn meta_idx(&self, who: InstanceId) -> Option<usize> {
        self.metas.binary_search_by_key(&who, |m| m.id).ok()
    }

    #[inline]
    pub(crate) fn meta(&self, who: InstanceId) -> &Meta {
        &self.metas[self.meta_idx(who).expect("instance is live")]
    }

    #[inline]
    pub(crate) fn meta_mut(&mut self, who: InstanceId) -> &mut Meta {
        let i = self.meta_idx(who).expect("instance is live");
        &mut self.metas[i]
    }

    pub(crate) fn is_active(&self, who: InstanceId) -> bool {
        self.meta_idx(who).is_some()
    }
}

impl EngineView for RtView<'_> {
    fn set(&self) -> &TransactionSet {
        self.set
    }
    fn locks(&self) -> &LockTable {
        &self.locks
    }
    fn ceilings(&self) -> &CeilingTable {
        &self.ceilings
    }
    fn base_priority(&self, who: InstanceId) -> Priority {
        self.set.priority_of(who.txn)
    }
    fn running_priority(&self, who: InstanceId) -> Priority {
        self.pm.running(who)
    }
    fn data_read(&self, who: InstanceId) -> &[ItemId] {
        self.meta_idx(who)
            .map_or(&[], |i| self.metas[i].data_read.as_slice())
    }
    fn pending_request(&self, who: InstanceId) -> Option<LockRequest> {
        self.meta_idx(who).and_then(|i| self.metas[i].pending)
    }
    fn active_instances(&self) -> &[InstanceId] {
        &self.active
    }
    fn staged_write_items(&self, who: InstanceId) -> Vec<ItemId> {
        self.meta_idx(who)
            .map_or_else(Vec::new, |i| self.metas[i].staged.clone())
    }
    fn deps(&self) -> Option<&DepTracker> {
        Some(&self.deps)
    }
}

/// The guarded heart of the runtime, shared by both manager kinds: under
/// [`ManagerKind::Mutex`] every worker locks it directly; under
/// [`ManagerKind::Combining`] only the current combiner does.
pub(crate) struct Shared<'a> {
    pub(crate) view: RtView<'a>,
    pub(crate) protocol: AnyProtocol,
    pub(crate) kind: ProtocolKind,
    /// True under the combining manager: `wake`/`abort_victim` complete
    /// parked *operations* (publication slots) instead of notifying
    /// parked *threads*.
    pub(crate) delegated: bool,
    pub(crate) db: Database,
    pub(crate) history: History,
    /// Logical event clock: history ticks order events for readers of the
    /// log; correctness oracles never compare tick values across runs. In
    /// multi-shard runs the counter is shared by every shard, so ticks
    /// are globally unique and the per-shard histories merge by tick.
    pub(crate) clock: Arc<AtomicU64>,
    /// This shard's index (0 in unsharded runs).
    pub(crate) shard: usize,
    /// Item→shard routing; `Some` exactly in multi-shard runs.
    pub(crate) router: Option<ShardRouter>,
    /// Where this shard publishes its local system ceiling (multi-shard
    /// runs only).
    pub(crate) global: Option<Arc<GlobalCeiling>>,
    /// The cross-shard commit gate (multi-shard runs only); see
    /// [`ShardCtx::gate`].
    pub(crate) gate: Option<Arc<Mutex<u64>>>,
    /// Lock-table version at the last ceiling publication, so a shard
    /// publishes only when a transition actually happened.
    last_pub_version: u64,
    /// Times this shard's state mutex was acquired — the shard-isolation
    /// telemetry behind the "single-shard transactions never touch
    /// another shard's state lock" assertion.
    pub(crate) state_lock_acquires: u64,
    pub(crate) commits: u64,
    pub(crate) restarts: u64,
    pub(crate) deadlocks_resolved: u64,
    /// Park-timeout safety-net firings (mutex manager; the combining
    /// manager counts its own on the worker side).
    pub(crate) park_timeout_wakeups: u64,
    /// Instances whose parked operation a re-evaluation would now grant,
    /// in wake order (combining mode only; drained by the combiner).
    pub(crate) woken_queue: Vec<InstanceId>,
    /// Combining-pass telemetry (combining mode only).
    pub(crate) combiner: CombinerStats,
    /// The snapshot-read side-car, when the path is enabled: every commit
    /// publishes its installs (and seals a stamp) here, inside this state
    /// core's critical section.
    pub(crate) snap: Option<Arc<SnapshotSide>>,
    /// Why instances aborted, by cause.
    pub(crate) abort_reasons: AbortBreakdown,
    reeval_scratch: Vec<InstanceId>,
    /// Scratch for the publish batch handed to the snapshot store.
    publish_scratch: Vec<(ItemId, VersionedValue)>,
}

/// What [`Shared::try_acquire`] told the caller.
pub(crate) enum TryAcquire {
    /// Granted (or already covered); the data operation happened.
    Done,
    /// State changed (victims aborted); retry the request immediately.
    Retry,
    /// Blocked; park on the returned condvar (mutex manager) or record a
    /// parked operation (combining manager).
    Park(Arc<Condvar>),
}

impl<'a> Shared<'a> {
    pub(crate) fn new(
        set: &'a TransactionSet,
        kind: ProtocolKind,
        delegated: bool,
        snap: Option<Arc<SnapshotSide>>,
        shard_ctx: ShardCtx,
    ) -> Self {
        let ceilings = CeilingTable::new(set);
        let locks = LockTable::with_index(&ceilings);
        Shared {
            view: RtView {
                set,
                ceilings,
                locks,
                pm: PriorityManager::new(),
                active: Vec::new(),
                metas: Vec::new(),
                deps: DepTracker::new(),
            },
            protocol: instantiate(kind),
            kind,
            delegated,
            db: Database::new(),
            history: History::new(),
            clock: shard_ctx.clock,
            shard: shard_ctx.shard,
            router: shard_ctx.router,
            global: shard_ctx.global,
            gate: shard_ctx.gate,
            last_pub_version: 0,
            state_lock_acquires: 0,
            commits: 0,
            restarts: 0,
            deadlocks_resolved: 0,
            park_timeout_wakeups: 0,
            woken_queue: Vec::new(),
            combiner: CombinerStats::default(),
            snap,
            abort_reasons: AbortBreakdown::default(),
            reeval_scratch: Vec::new(),
            publish_scratch: Vec::new(),
        }
    }

    pub(crate) fn into_report(self, extra_timeout_wakeups: u64) -> ManagerReport {
        debug_assert!(self.view.active.is_empty(), "live instances at finish");
        ManagerReport {
            history: self.history,
            db: self.db,
            commits: self.commits,
            restarts: self.restarts,
            deadlocks_resolved: self.deadlocks_resolved,
            park_timeout_wakeups: self.park_timeout_wakeups + extra_timeout_wakeups,
            combiner: self.combiner,
            lock_transitions: self.view.locks.version(),
            state_lock_acquires: self.state_lock_acquires,
            shard: self.shard,
            abort_reasons: self.abort_reasons,
        }
    }

    #[inline]
    pub(crate) fn tick(&mut self) -> Tick {
        Tick(self.clock.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Publish this shard's local system ceiling to the global layer if a
    /// lock-table transition happened since the last publication. No-op
    /// in unsharded runs. Called at the end of every state-mutating entry
    /// point, i.e. before the shard's state lock is released.
    pub(crate) fn maybe_publish_ceiling(&mut self) {
        let Some(global) = self.global.clone() else {
            return;
        };
        let v = self.view.locks.version();
        if v != self.last_pub_version {
            self.last_pub_version = v;
            let ceiling = {
                let Shared { view, protocol, .. } = self;
                protocol.system_ceiling(view)
            };
            global.publish(self.shard, ceiling);
        }
    }

    pub(crate) fn take_abort(&mut self, who: InstanceId) -> bool {
        let m = self.view.meta_mut(who);
        if m.aborted {
            m.aborted = false;
            m.woken = false;
            true
        } else {
            false
        }
    }

    /// Register a released instance.
    pub(crate) fn begin(&mut self, id: InstanceId) {
        self.begin_sharded(id, true, None);
    }

    /// Register a released instance in this shard. A cross-shard instance
    /// registers in every shard it will touch (ascending order) but logs
    /// its Begin event only in its *home* shard (`log_begin`), carrying
    /// the shared abort `signal` everywhere so any shard can flag it.
    pub(crate) fn begin_sharded(
        &mut self,
        id: InstanceId,
        log_begin: bool,
        signal: Option<Arc<AtomicBool>>,
    ) {
        let base = self.view.set.priority_of(id.txn);
        let at = log_begin.then(|| self.tick());
        match self.view.metas.binary_search_by_key(&id, |m| m.id) {
            Ok(_) => panic!("instance {id:?} begun twice"),
            Err(i) => {
                let mut m = Meta::new(id);
                m.signal = signal;
                self.view.metas.insert(i, m);
            }
        }
        match self.view.active.binary_search(&id) {
            Ok(_) => unreachable!(),
            Err(i) => self.view.active.insert(i, id),
        }
        self.view.pm.register(id, base);
        if let Some(at) = at {
            self.history.push(at, id, EventKind::Begin);
        }
    }

    /// Perform the granted data operation through the worker's private
    /// workspace and refresh the mirrors the protocols observe.
    fn perform_op(
        &mut self,
        who: InstanceId,
        step_index: usize,
        item: ItemId,
        mode: LockMode,
        ws: &mut Workspace,
    ) {
        let at = self.tick();
        let Shared {
            view,
            db,
            history,
            router,
            shard,
            ..
        } = self;
        match mode {
            LockMode::Read => {
                // Dirty read over a retired chain: with no own staged
                // value, the latest live retired writer's value is the
                // one this reader is ordered after (the commit dependency
                // taken at grant time). Its predicted version is the
                // committed version plus the chain length — every live
                // chain member installs exactly one bump first.
                let dirty = if ws.staged_value(item).is_none() {
                    view.deps.latest_retired(item)
                } else {
                    None
                };
                let rec = match dirty {
                    Some((rw, chain_len)) if rw.owner != who => {
                        let version = db.get(item).version + chain_len as u64;
                        ws.read_dirty(item, rw.value, version)
                    }
                    _ => ws.read(db, item),
                };
                history.push(
                    at,
                    who,
                    EventKind::Read {
                        item,
                        value: rec.value,
                        version: rec.version,
                        own: rec.own,
                    },
                );
                let m = view.meta_mut(who);
                m.data_read.clear();
                match router {
                    // Multi-shard: this shard's protocol instance must
                    // only see the reads it governs — a cross-shard
                    // reader's off-shard items would otherwise produce
                    // spurious OCC invalidations here.
                    Some(r) => m
                        .data_read
                        .extend(ws.data_read().iter().filter(|&&i| r.shard_of(i) == *shard)),
                    None => m.data_read.extend_from_slice(ws.data_read()),
                }
            }
            LockMode::Write => {
                let value = ws.write(step_index, item);
                history.push(at, who, EventKind::StageWrite { item, value });
                let m = view.meta_mut(who);
                if let Err(i) = m.staged.binary_search(&item) {
                    m.staged.insert(i, item);
                }
            }
        }
    }

    pub(crate) fn try_acquire(
        &mut self,
        who: InstanceId,
        step_index: usize,
        item: ItemId,
        mode: LockMode,
        ws: &mut Workspace,
    ) -> TryAcquire {
        let result = self.try_acquire_inner(who, step_index, item, mode, ws);
        self.maybe_publish_ceiling();
        result
    }

    fn try_acquire_inner(
        &mut self,
        who: InstanceId,
        step_index: usize,
        item: ItemId,
        mode: LockMode,
        ws: &mut Workspace,
    ) -> TryAcquire {
        // Clear a stale wake flag from a previous round.
        self.view.meta_mut(who).woken = false;

        if self.view.locks.covers(who, item, mode) {
            self.perform_op(who, step_index, item, mode, ws);
            return TryAcquire::Done;
        }

        let req = LockRequest { who, item, mode };
        let decision = {
            let Shared { view, protocol, .. } = self;
            protocol.request(view, req)
        };
        match decision {
            Decision::Grant => {
                self.view.locks.grant(who, item, mode);
                // Acquiring an item with live retired writes orders the
                // grantee after the latest such writer — its commit gates
                // on the writer's, and the writer's abort cascades.
                // Registered for *every* mode: a write over the chain
                // must also install after the chain.
                let latest = self.view.deps.latest_retired(item).map(|(rw, _)| rw.owner);
                if let Some(owner) = latest {
                    self.view.deps.add_dep(who, owner);
                }
                {
                    let Shared { view, protocol, .. } = self;
                    protocol.on_grant(view, req);
                }
                self.perform_op(who, step_index, item, mode, ws);
                TryAcquire::Done
            }
            Decision::AbortHolders { victims } => {
                for v in victims {
                    if v != who {
                        self.abort_victim(v, AbortReason::Wound);
                    }
                }
                self.reevaluate();
                TryAcquire::Retry
            }
            Decision::AbortSelf { .. } => {
                // Ordered self-abort (Brook-2PL yielding to a senior):
                // restart the requester. The runtime's restart backoff
                // provides the retry gap the simulator models with an
                // explicit wait-die hold.
                self.abort_victim(who, AbortReason::CeilingBlock);
                TryAcquire::Retry
            }
            Decision::Block { blockers } => {
                self.block(who, req, &blockers);
                // A new blocking edge can itself unblock others (PCP-DA's
                // commit-order guard); give every parked request a pass
                // before testing for a deadlock.
                self.reevaluate();
                if self.view.meta(who).pending.is_some() {
                    self.resolve_deadlocks();
                }
                match &self.view.meta(who) {
                    m if m.aborted || m.woken || m.pending.is_none() => TryAcquire::Retry,
                    m => TryAcquire::Park(m.cv.clone()),
                }
            }
        }
    }

    fn block(&mut self, who: InstanceId, req: LockRequest, blockers: &[InstanceId]) {
        let my_base = self.view.set.priority_of(who.txn);
        {
            let RtView { set, .. } = self.view;
            let m = self.view.meta_mut(who);
            debug_assert!(m.pending.is_none());
            m.pending = Some(req);
            m.block_events += 1;
            for &b in blockers {
                if set.priority_of(b.txn) < my_base {
                    m.note_lower_blocker(b.txn);
                }
            }
        }
        self.view.pm.set_blocked(who, blockers);
    }

    /// Mirror of the simulator's `reevaluate`: re-present every parked
    /// request in descending running-priority order; wake those that would
    /// now be granted (the grant itself happens when the woken thread
    /// re-issues the request — or, under the combining manager, when the
    /// combiner drains the woken queue), refresh the blocking edges of the
    /// rest.
    pub(crate) fn reevaluate(&mut self) {
        let mut blocked = std::mem::take(&mut self.reeval_scratch);
        blocked.clear();
        blocked.extend(
            self.view
                .metas
                .iter()
                .filter(|m| m.pending.is_some())
                .map(|m| m.id),
        );
        blocked.sort_by_key(|&id| {
            Reverse((
                self.view.pm.running(id),
                self.view.set.priority_of(id.txn),
                Reverse(id.seq),
            ))
        });
        for &who in &blocked {
            let Some(req) = self.view.meta(who).pending else {
                continue; // woken or aborted earlier in this pass
            };
            let decision = {
                let Shared { view, protocol, .. } = self;
                protocol.request(view, req)
            };
            match decision {
                Decision::Grant | Decision::AbortHolders { .. } | Decision::AbortSelf { .. } => {
                    // Would be granted now — or would abort (the woken
                    // worker must run to find out): advisory wake either
                    // way.
                    self.wake(who)
                }
                Decision::Block { blockers } => {
                    debug_assert!(!blockers.is_empty());
                    let my_base = self.view.set.priority_of(who.txn);
                    {
                        let RtView { set, .. } = self.view;
                        let m = self.view.meta_mut(who);
                        for &b in &blockers {
                            if set.priority_of(b.txn) < my_base {
                                m.note_lower_blocker(b.txn);
                            }
                        }
                    }
                    self.view.pm.set_blocked(who, &blockers);
                }
            }
        }
        self.reeval_scratch = blocked;
    }

    /// Clear `who`'s pending request and hand the wake to its owner: the
    /// parked thread's condvar (mutex manager) or the combiner's woken
    /// queue (combining manager).
    fn wake(&mut self, who: InstanceId) {
        self.view.pm.clear_blocked(who);
        let delegated = self.delegated;
        let m = self.view.meta_mut(who);
        m.pending = None;
        m.woken = true;
        if delegated {
            self.woken_queue.push(who);
        } else {
            m.cv.notify_one();
        }
    }

    /// True while any live instance still has a pending (denied) request —
    /// the combiner's cue to run the end-of-pass deadlock sweep.
    pub(crate) fn has_blocked(&self) -> bool {
        self.view.pm.has_edges()
    }

    /// Detect and resolve wait-for cycles by aborting the lowest-base-
    /// priority instance on each cycle until none remains.
    pub(crate) fn resolve_deadlocks(&mut self) {
        loop {
            let Some(cycle) = WaitForGraph::from_edges(self.view.pm.edges()).find_cycle() else {
                return;
            };
            let victim = deadlock_victim(&cycle, |v| self.view.set.priority_of(v.txn));
            self.deadlocks_resolved += 1;
            self.abort_victim(victim, AbortReason::DeadlockVictim);
            self.reevaluate();
        }
    }

    /// Abort a live instance: release its locks, clear its protocol-visible
    /// state, flag its worker to restart. The victim's workspace is reset
    /// by the owning thread when it observes the flag; until then the
    /// cleared mirrors are what protocols see — the same state the
    /// simulator reaches by resetting the slot in place. Under the
    /// combining manager a victim parked on a denied request is answered
    /// directly: its parked operation completes with `Restart` and its
    /// workspace travels back through the publication slot.
    pub(crate) fn abort_victim(&mut self, victim: InstanceId, reason: AbortReason) {
        if !self.view.is_active(victim) {
            return; // committed between the decision and now — same critical section, so only via commit_victims listing a stale id
        }
        assert_eq!(
            self.kind.update_model(),
            UpdateModel::Workspace,
            "aborts require the workspace model (no undo implemented)"
        );
        // A cross-shard victim is aborted *locally*: clean this shard's
        // slice of its state and raise the shared signal; the victim's
        // own worker (which never parks while it holds anything) observes
        // the signal at its next sharded-manager entry point, cleans its
        // remaining shards the same way, and logs the single Abort +
        // restart-Begin pair in its home shard. `aborted` doubles as the
        // "this shard already ran its local abort" marker the victim's
        // sweep consumes.
        if let Some(sig) = self.view.meta(victim).signal.clone() {
            let m = self.view.meta_mut(victim);
            debug_assert!(m.parked.is_none(), "cross-shard instances never park");
            if m.aborted {
                return; // local abort already ran; victim not yet swept
            }
            self.abort_reasons.record(reason);
            m.aborted = true;
            m.pending = None;
            m.woken = false;
            m.data_read.clear();
            m.staged.clear();
            m.installed_early.clear();
            sig.store(true, Ordering::Release);
            self.view.locks.release_all(victim);
            self.view.pm.clear_blocked(victim);
            {
                let Shared { view, protocol, .. } = self;
                protocol.on_abort(view, victim);
            }
            self.maybe_publish_ceiling();
            return;
        }
        self.abort_reasons.record(reason);
        let at = self.tick();
        self.history.push(at, victim, EventKind::Abort);
        self.view.locks.release_all(victim);
        self.view.pm.clear_blocked(victim);
        let parked = {
            let delegated = self.delegated;
            let m = self.view.meta_mut(victim);
            m.pending = None;
            m.woken = false;
            m.data_read.clear();
            m.staged.clear();
            m.installed_early.clear();
            m.restarts += 1;
            match m.parked.take() {
                Some(p) => Some(p),
                None => {
                    // Running (or queued) worker: it observes the flag at
                    // its next manager call; parked mutex waiters observe
                    // it when the notify lands.
                    m.aborted = true;
                    if !delegated {
                        m.cv.notify_one();
                    }
                    None
                }
            }
        };
        self.restarts += 1;
        if let Some(p) = parked {
            // The parked operation consumed the abort: answer it now.
            let prio = self.view.set.priority_of(victim.txn).level();
            self.combiner.record_slot_wait(prio, p.published.elapsed());
            p.slot.post(Response::Restart(p.ws));
        }
        {
            let Shared { view, protocol, .. } = self;
            protocol.on_abort(view, victim);
        }
        let at = self.tick();
        self.history.push(at, victim, EventKind::Begin);
        // Everyone who observed (or overwrote) the victim's retired
        // writes aborts with it — the dependency tracker hands back the
        // transitive closure, each member exactly once.
        let cascade = self.view.deps.on_abort(victim);
        for d in cascade {
            if self.view.is_active(d) {
                self.abort_victim(d, AbortReason::Cascade);
            }
        }
        self.maybe_publish_ceiling();
    }

    /// Report step `completed_step` finished; applies the protocol's early
    /// releases (CCP) and re-evaluates waiters. Shared by both managers
    /// (the caller holds whatever exclusion its kind requires).
    pub(crate) fn step_done_inner(
        &mut self,
        id: InstanceId,
        completed_step: usize,
        ws: &Workspace,
    ) {
        let releases = {
            let Shared { view, protocol, .. } = self;
            protocol.early_releases(view, id, completed_step)
        };
        let retired = {
            let Shared { view, protocol, .. } = self;
            protocol.retires(view, id, completed_step)
        };
        if releases.is_empty() && retired.is_empty() {
            return;
        }
        let install_early = self.kind.update_model() == UpdateModel::InstallOnEarlyRelease;
        for (item, mode) in releases {
            debug_assert!(self.view.locks.holds(id, item, mode));
            self.view.locks.release(id, item, mode);
            if install_early && mode == LockMode::Write {
                if let Some(value) = ws.staged_value(item) {
                    if self.view.meta_mut(id).mark_installed_early(item) {
                        let at = self.tick();
                        let version = self.db.install(id, item, value, at);
                        self.history.push(
                            at,
                            id,
                            EventKind::Install {
                                item,
                                value,
                                version,
                            },
                        );
                    }
                }
            }
        }
        // Early release into the retired list (Bamboo / Brook-2PL):
        // write locks past their last access release now; the staged
        // value stays visible through the dependency tracker, and
        // successors order themselves behind the retiree via commit
        // dependencies instead of lock waits.
        for item in retired {
            debug_assert!(self.view.locks.holds(id, item, LockMode::Write));
            let staged = ws
                .staged_value(item)
                .expect("retired an item without a staged write");
            if self.view.locks.holds(id, item, LockMode::Read) {
                // An upgrade's read lock goes with the write lock:
                // successors are ordered by the dependency anyway.
                self.view.locks.release(id, item, LockMode::Read);
            }
            self.view.locks.release(id, item, LockMode::Write);
            self.view.deps.retire(id, item, staged);
        }
        self.reevaluate();
        self.maybe_publish_ceiling();
    }

    /// The protocol's commit victims for `id` — borrow helper for the
    /// sharded manager's multi-guard cross-shard commit.
    pub(crate) fn protocol_commit_victims(&mut self, id: InstanceId) -> Vec<InstanceId> {
        let Shared { view, protocol, .. } = self;
        protocol.commit_victims(view, id)
    }

    /// Commit-side teardown of `id` in this shard: release its locks,
    /// drop it from the priority manager, notify the protocol and remove
    /// its registration, returning the meta for stats accounting. The
    /// sharded manager's cross-shard commit runs this once per touched
    /// shard (the Commit/Install events are logged by the caller).
    pub(crate) fn remove_instance(&mut self, id: InstanceId) -> Meta {
        self.view.locks.release_all(id);
        self.view.pm.remove(id);
        {
            let Shared { view, protocol, .. } = self;
            protocol.on_commit(view, id);
        }
        let i = self.view.meta_idx(id).expect("instance is live");
        let meta = self.view.metas.remove(i);
        if let Ok(i) = self.view.active.binary_search(&id) {
            self.view.active.remove(i);
        }
        meta
    }

    /// The victim's side of a cross-shard abort, run per shard by the
    /// victim's own sweep: consume the "local abort already ran" marker
    /// if an aborter got here first, otherwise release this shard's
    /// slice silently — the sweep logs the single Abort/Begin pair in
    /// the home shard itself.
    pub(crate) fn abort_local_cross(&mut self, id: InstanceId) {
        if !self.view.is_active(id) {
            return;
        }
        let m = self.view.meta_mut(id);
        if m.aborted {
            m.aborted = false; // the aborting shard already released everything here
            return;
        }
        m.pending = None;
        m.woken = false;
        m.data_read.clear();
        m.staged.clear();
        m.installed_early.clear();
        self.view.locks.release_all(id);
        self.view.pm.clear_blocked(id);
        {
            let Shared { view, protocol, .. } = self;
            protocol.on_abort(view, id);
        }
    }

    /// Commit gate: with outstanding commit dependencies `id` must not
    /// commit yet (recoverability — nobody commits a value derived from a
    /// dirty read whose writer can still abort). Registers the gate waits
    /// in the priority manager — the committer donates its priority to
    /// the dependencies it waits on, and the wait-for graph sees gate
    /// edges, so a gate-plus-lock cycle (possible under Bamboo) resolves
    /// like any other deadlock. Returns true when the caller must park:
    /// the drain in a dependency's commit wakes it (`woken`), a cascading
    /// abort restarts it (`aborted`).
    pub(crate) fn gate_commit(&mut self, id: InstanceId) -> bool {
        let deps: Vec<InstanceId> = self.view.deps.deps_of(id).to_vec();
        if deps.is_empty() {
            return false;
        }
        self.view.meta_mut(id).woken = false;
        self.view.pm.set_blocked(id, &deps);
        self.resolve_deadlocks();
        true
    }

    /// Commit `id`: abort the protocol's commit victims, install staged
    /// writes, release everything, re-evaluate waiters. The caller has
    /// already consumed any abort flag and cleared the commit gate
    /// ([`Shared::gate_commit`] returned false).
    pub(crate) fn commit_inner(&mut self, id: InstanceId, ws: &Workspace) -> JobStats {
        debug_assert!(!self.view.deps.has_deps(id), "commit through a closed gate");
        let victims = self.protocol_commit_victims(id);
        for v in victims {
            if v != id {
                self.abort_victim(v, AbortReason::Wound);
            }
        }

        // Multi-shard runs serialize {commit tick, installs, snapshot
        // publish, commit index} through the run-global commit gate, so
        // commit-tick order, commit-index order and snapshot-stamp order
        // all agree across shards (and the single-publisher contract of
        // `SnapshotStore::publish` holds). Unsharded runs have no gate:
        // the state mutex already serializes all of this.
        let gate = self.gate.clone();
        let mut gate_guard = gate
            .as_ref()
            .map(|g| g.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
        let at = self.tick();
        self.history.push(at, id, EventKind::Commit);
        {
            let Shared {
                view,
                db,
                history,
                snap,
                publish_scratch,
                ..
            } = self;
            let m = view.meta(id);
            for &(item, value) in ws.staged_writes() {
                if m.installed_early.binary_search(&item).is_ok() {
                    continue;
                }
                let version = db.install(id, item, value, at);
                history.push(
                    at,
                    id,
                    EventKind::Install {
                        item,
                        value,
                        version,
                    },
                );
                if snap.is_some() {
                    publish_scratch.push((
                        item,
                        VersionedValue {
                            value,
                            version,
                            writer: Some(id),
                            installed_at: at,
                        },
                    ));
                }
            }
            // Seal this commit's stamp — on *every* lock-path commit,
            // written or not, so stamp `S` means "the state after the
            // first `S` commits" exactly as the oracle counts them.
            if let Some(side) = snap {
                side.store.publish(publish_scratch);
                publish_scratch.clear();
            }
        }
        let commit_index = match gate_guard.as_deref_mut() {
            Some(next) => {
                let i = *next;
                *next += 1;
                i
            }
            None => self.commits,
        };
        drop(gate_guard);
        self.commits += 1;
        // Dependency bookkeeping: the retired entries become committed
        // state, and dependents whose last dependency this was may now
        // pass the commit gate.
        let drained = self.view.deps.on_commit(id);
        let meta = self.remove_instance(id);
        let stats = JobStats {
            commit_index,
            restarts: meta.restarts,
            block_events: meta.block_events,
            lower_blockers: meta.lower_blockers,
            snapshot: None,
        };
        self.reevaluate();
        // Advisory wakes for the drained dependents: a committer parked
        // at the gate re-presents its commit; one still mid-execution
        // simply finds the gate open when it arrives.
        for d in drained {
            if self.view.is_active(d) {
                self.wake(d);
            }
        }
        self.maybe_publish_ceiling();
        stats
    }
}

/// The original mutex manager: one global lock, per-waiter condvar
/// parking. Kept verbatim as the differential oracle for the combining
/// manager (mirroring how the map-store engine oracles the slot arena).
pub(crate) struct MutexManager<'a> {
    state: Mutex<Shared<'a>>,
    /// Park `wait_timeout` safety net (see [`crate::RtConfig::park_timeout`]).
    park_timeout: Duration,
}

impl<'a> MutexManager<'a> {
    pub(crate) fn new(
        set: &'a TransactionSet,
        kind: ProtocolKind,
        tuning: ManagerTuning,
        snap: Option<Arc<SnapshotSide>>,
        shard_ctx: ShardCtx,
    ) -> Self {
        MutexManager {
            park_timeout: tuning.park_timeout,
            state: Mutex::new(Shared::new(set, kind, false, snap, shard_ctx)),
        }
    }

    /// Lock the shared state, recovering from poisoning (a panicking
    /// worker already fails the run via the scope join; secondary threads
    /// should not cascade with confusing poison panics).
    fn lock(&self) -> MutexGuard<'_, Shared<'a>> {
        let mut g = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        g.state_lock_acquires += 1;
        g
    }

    /// The raw state mutex — the sharded manager's direct cross-shard
    /// access path.
    pub(crate) fn state_mutex(&self) -> &Mutex<Shared<'a>> {
        &self.state
    }

    pub(crate) fn begin(&self, id: InstanceId) {
        self.lock().begin(id);
    }

    /// Acquire `item` in `mode` for step `step_index`, performing the data
    /// operation at grant time. Parks the calling thread while the
    /// protocol denies the request.
    pub(crate) fn acquire(
        &self,
        id: InstanceId,
        step_index: usize,
        item: ItemId,
        mode: LockMode,
        ws: &mut Workspace,
    ) -> Outcome {
        let mut g = self.lock();
        loop {
            if g.take_abort(id) {
                return Outcome::Restart;
            }
            match g.try_acquire(id, step_index, item, mode, ws) {
                TryAcquire::Done => return Outcome::Done,
                TryAcquire::Retry => continue,
                TryAcquire::Park(cv) => {
                    loop {
                        let (g2, timeout) = cv
                            .wait_timeout(g, self.park_timeout)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        g = g2;
                        let m = g.view.meta(id);
                        if m.aborted || m.woken || m.pending.is_none() {
                            break;
                        }
                        if timeout.timed_out() {
                            // Safety net: heal lost wake-ups and cycles
                            // that formed without a block event.
                            g.park_timeout_wakeups += 1;
                            g.reevaluate();
                            if g.view.meta(id).pending.is_some() {
                                g.resolve_deadlocks();
                            }
                        }
                    }
                    // Retry (or observe the abort) at the top of the loop.
                }
            }
        }
    }

    /// Report step `completed_step` finished; applies the protocol's early
    /// releases (CCP) and re-evaluates waiters.
    pub(crate) fn step_done(
        &self,
        id: InstanceId,
        completed_step: usize,
        ws: &Workspace,
    ) -> Outcome {
        let mut g = self.lock();
        if g.take_abort(id) {
            return Outcome::Restart;
        }
        g.step_done_inner(id, completed_step, ws);
        Outcome::Done
    }

    /// Commit: validate (OCC), install staged writes, release everything,
    /// wake waiters. Parks at the commit gate while the instance still
    /// has commit dependencies (early-release protocols). Fails with
    /// [`CommitOutcome::Restart`] if the instance was aborted before the
    /// commit point (or cascaded out of the gate).
    pub(crate) fn commit(&self, id: InstanceId, ws: &Workspace) -> CommitOutcome {
        let mut g = self.lock();
        loop {
            if g.take_abort(id) {
                return CommitOutcome::Restart;
            }
            if !g.gate_commit(id) {
                return CommitOutcome::Committed(g.commit_inner(id, ws));
            }
            // Gated: wait for the drain wake of the last dependency's
            // commit, or the abort flag of its cascade.
            let cv = g.view.meta(id).cv.clone();
            loop {
                {
                    let m = g.view.meta(id);
                    if m.aborted || m.woken {
                        break;
                    }
                }
                let (g2, timeout) = cv
                    .wait_timeout(g, self.park_timeout)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                g = g2;
                if timeout.timed_out() {
                    // Safety net: heal lost wake-ups and gate cycles that
                    // formed without a block event.
                    g.park_timeout_wakeups += 1;
                    g.reevaluate();
                    g.resolve_deadlocks();
                }
            }
        }
    }

    pub(crate) fn finish(self) -> ManagerReport {
        self.state
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .into_report(0)
    }
}

/// The concurrent lock manager: one per [`crate::run`] invocation, shared
/// by reference across the worker threads of that run. Dispatches to the
/// [`ManagerKind`] the run was configured with.
pub(crate) enum LockManager<'a> {
    Mutex(MutexManager<'a>),
    Combining(CombiningManager<'a>),
}

impl<'a> LockManager<'a> {
    pub(crate) fn new(
        set: &'a TransactionSet,
        kind: ProtocolKind,
        manager: ManagerKind,
        tuning: ManagerTuning,
        snap: Option<Arc<SnapshotSide>>,
        shard_ctx: ShardCtx,
    ) -> Self {
        match manager {
            ManagerKind::Mutex => {
                LockManager::Mutex(MutexManager::new(set, kind, tuning, snap, shard_ctx))
            }
            ManagerKind::Combining => {
                LockManager::Combining(CombiningManager::new(set, kind, tuning, snap, shard_ctx))
            }
        }
    }

    /// Lock this shard's state directly — the sharded manager's
    /// cross-shard path. Legal for both kinds: the combining manager's
    /// combiner owns the *intake* protocol, but any state-lock holder may
    /// act on [`Shared`] (the combiner simply waits its turn on the same
    /// mutex). The caller must call [`LockManager::drain_woken_external`]
    /// before dropping the guard if its actions may have woken waiters.
    pub(crate) fn lock_shared(&self) -> MutexGuard<'_, Shared<'a>> {
        let state = match self {
            LockManager::Mutex(m) => m.state_mutex(),
            LockManager::Combining(m) => m.state_mutex(),
        };
        let mut g = state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        g.state_lock_acquires += 1;
        g
    }

    /// Answer any parked operations a cross-shard action woke: the
    /// combining manager queues wakes for the combiner, so an external
    /// state-lock holder must drain the queue itself before unlocking
    /// (no-op for the mutex manager, whose wakes notify condvars
    /// directly).
    pub(crate) fn drain_woken_external(&self, g: &mut MutexGuard<'_, Shared<'a>>) {
        if let LockManager::Combining(m) = self {
            m.drain_woken_external(g);
        }
    }

    /// Register a released instance.
    pub(crate) fn begin(&self, id: InstanceId, ctx: &mut WorkerCtx) {
        match self {
            LockManager::Mutex(m) => m.begin(id),
            LockManager::Combining(m) => m.begin(id, ctx),
        }
    }

    /// Acquire `item` in `mode` for step `step_index`, performing the data
    /// operation at grant time through `ctx.ws`. Blocks the calling worker
    /// while the protocol denies the request.
    pub(crate) fn acquire(
        &self,
        id: InstanceId,
        step_index: usize,
        item: ItemId,
        mode: LockMode,
        ctx: &mut WorkerCtx,
    ) -> Outcome {
        match self {
            LockManager::Mutex(m) => m.acquire(id, step_index, item, mode, &mut ctx.ws),
            LockManager::Combining(m) => m.acquire(id, step_index, item, mode, ctx),
        }
    }

    /// Report step `completed_step` finished.
    pub(crate) fn step_done(
        &self,
        id: InstanceId,
        completed_step: usize,
        ctx: &mut WorkerCtx,
    ) -> Outcome {
        match self {
            LockManager::Mutex(m) => m.step_done(id, completed_step, &ctx.ws),
            LockManager::Combining(m) => m.step_done(id, completed_step, ctx),
        }
    }

    /// Commit `id`, installing the staged writes in `ctx.ws`.
    pub(crate) fn commit(&self, id: InstanceId, ctx: &mut WorkerCtx) -> CommitOutcome {
        match self {
            LockManager::Mutex(m) => m.commit(id, &ctx.ws),
            LockManager::Combining(m) => m.commit(id, ctx),
        }
    }

    /// Tear down after every worker joined, yielding the run's artifacts.
    pub(crate) fn finish(self) -> ManagerReport {
        match self {
            LockManager::Mutex(m) => m.finish(),
            LockManager::Combining(m) => m.finish(),
        }
    }
}
