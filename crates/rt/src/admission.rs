//! The bounded admission queue and its overload policies.
//!
//! Submitters enqueue [`crate::JobRequest`]s here without ever touching
//! the lock manager; the dispatcher thread drains the queue into the
//! worker pool. The queue is the *only* place the open-loop front door
//! pushes back on offered load, and what it does when full is the
//! [`AdmissionPolicy`]:
//!
//! * [`AdmissionPolicy::Reject`] — bounce the new request back to its
//!   submitter (classic open-loop drop-tail; offered load above
//!   saturation shows up as a rising reject count);
//! * [`AdmissionPolicy::ShedOldest`] — admit the new request and shed
//!   the *oldest* queued one (its submitter is told via
//!   [`crate::Completion::Shed`]; under deadline pressure the oldest
//!   request is the one most likely to be dead on arrival anyway);
//! * [`AdmissionPolicy::Block`] — park the submitter until space frees
//!   up (turns the open loop into a closed loop at the bound — useful
//!   for replay and backpressure experiments, but it hides queueing
//!   collapse, which is exactly why it is not the load generator's
//!   default).
//!
//! Admission timestamps are taken *inside* the queue's critical section
//! at the moment the entry actually enters the queue, so queueing delay
//! (admission → worker start) is well defined even when a `Block`ed
//! submitter waited first.

use crate::front::{Completion, JobRequest};
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// What the admission queue does with a new request when it is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Bounce the new request back to the submitter.
    Reject,
    /// Admit the new request, shedding the oldest queued one.
    ShedOldest,
    /// Park the submitter until the queue has space.
    #[default]
    Block,
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AdmissionPolicy::Reject => "reject",
            AdmissionPolicy::ShedOldest => "shed-oldest",
            AdmissionPolicy::Block => "block",
        })
    }
}

impl std::str::FromStr for AdmissionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "reject" => Ok(AdmissionPolicy::Reject),
            "shed-oldest" | "shed" => Ok(AdmissionPolicy::ShedOldest),
            "block" => Ok(AdmissionPolicy::Block),
            other => Err(format!(
                "unknown admission policy `{other}` (expected reject, shed-oldest or block)"
            )),
        }
    }
}

/// One admitted request, as it travels queue → dispatcher → worker.
pub(crate) struct Admitted {
    pub req: JobRequest,
    /// Submission ticket, for correlating completions.
    pub ticket: u64,
    /// Stamped inside the queue at the moment of admission.
    pub admitted_at: Instant,
    /// The submitter's completion channel.
    pub done: Sender<Completion>,
}

/// Outcome of [`AdmissionQueue::push`].
pub(crate) enum Push {
    /// Entered the queue.
    Admitted,
    /// Entered the queue; the returned oldest entry was shed to make
    /// room ([`AdmissionPolicy::ShedOldest`]).
    AdmittedShed(Box<Admitted>),
    /// Bounced: the queue was full under [`AdmissionPolicy::Reject`].
    Rejected,
    /// Bounced: the front-end has shut down.
    Closed,
}

struct Inner {
    q: VecDeque<Admitted>,
    closed: bool,
}

/// A bounded MPSC queue: many submitters push, the dispatcher pops.
pub(crate) struct AdmissionQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                q: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Try to admit `item` under `policy`. Blocks only for
    /// [`AdmissionPolicy::Block`] on a full queue.
    pub(crate) fn push(&self, mut item: Admitted, policy: AdmissionPolicy) -> Push {
        let mut g = self.lock();
        loop {
            if g.closed {
                return Push::Closed;
            }
            if g.q.len() < self.capacity {
                item.admitted_at = Instant::now();
                g.q.push_back(item);
                self.not_empty.notify_one();
                return Push::Admitted;
            }
            match policy {
                AdmissionPolicy::Reject => return Push::Rejected,
                AdmissionPolicy::ShedOldest => {
                    let old = g.q.pop_front().expect("full queue is non-empty");
                    item.admitted_at = Instant::now();
                    g.q.push_back(item);
                    self.not_empty.notify_one();
                    return Push::AdmittedShed(Box::new(old));
                }
                AdmissionPolicy::Block => {
                    g = self
                        .not_full
                        .wait(g)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
    }

    /// Pop the oldest admitted request, blocking while the queue is open
    /// and empty. `None` once the queue is closed *and* drained.
    pub(crate) fn pop(&self) -> Option<Admitted> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.q.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self
                .not_empty
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Close the queue: further pushes bounce, pops drain what remains.
    pub(crate) fn close(&self) {
        let mut g = self.lock();
        g.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Queued (admitted, not yet dispatched) requests.
    pub(crate) fn len(&self) -> usize {
        self.lock().q.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::TxnId;
    use std::sync::mpsc::channel;

    fn item(ticket: u64) -> (Admitted, std::sync::mpsc::Receiver<Completion>) {
        let (tx, rx) = channel();
        (
            Admitted {
                req: JobRequest::new(TxnId(0)),
                ticket,
                admitted_at: Instant::now(),
                done: tx,
            },
            rx,
        )
    }

    #[test]
    fn reject_bounces_when_full() {
        let q = AdmissionQueue::new(2);
        for t in 0..2 {
            assert!(matches!(
                q.push(item(t).0, AdmissionPolicy::Reject),
                Push::Admitted
            ));
        }
        assert!(matches!(
            q.push(item(2).0, AdmissionPolicy::Reject),
            Push::Rejected
        ));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn shed_oldest_returns_the_oldest() {
        let q = AdmissionQueue::new(2);
        q.push(item(0).0, AdmissionPolicy::ShedOldest);
        q.push(item(1).0, AdmissionPolicy::ShedOldest);
        match q.push(item(2).0, AdmissionPolicy::ShedOldest) {
            Push::AdmittedShed(old) => assert_eq!(old.ticket, 0),
            _ => panic!("expected shed"),
        }
        let tickets: Vec<u64> = std::iter::from_fn(|| {
            q.close();
            q.pop().map(|a| a.ticket)
        })
        .collect();
        assert_eq!(tickets, vec![1, 2]);
    }

    #[test]
    fn block_waits_for_space() {
        let q = AdmissionQueue::new(1);
        q.push(item(0).0, AdmissionPolicy::Block);
        std::thread::scope(|s| {
            let pusher =
                s.spawn(|| matches!(q.push(item(1).0, AdmissionPolicy::Block), Push::Admitted));
            // Give the pusher a moment to park on the full queue, then
            // drain one entry to release it.
            std::thread::sleep(std::time::Duration::from_millis(5));
            assert_eq!(q.pop().expect("queued").ticket, 0);
            assert!(pusher.join().expect("pusher"));
        });
        assert_eq!(q.pop().expect("queued").ticket, 1);
    }

    #[test]
    fn close_drains_then_stops() {
        let q = AdmissionQueue::new(4);
        q.push(item(7).0, AdmissionPolicy::Reject);
        q.close();
        assert!(matches!(
            q.push(item(8).0, AdmissionPolicy::Block),
            Push::Closed
        ));
        assert_eq!(q.pop().expect("drains the backlog").ticket, 7);
        assert!(q.pop().is_none());
    }

    #[test]
    fn policy_parses_and_displays() {
        for p in [
            AdmissionPolicy::Reject,
            AdmissionPolicy::ShedOldest,
            AdmissionPolicy::Block,
        ] {
            assert_eq!(p.to_string().parse::<AdmissionPolicy>(), Ok(p));
        }
        assert_eq!(
            "shed".parse::<AdmissionPolicy>(),
            Ok(AdmissionPolicy::ShedOldest)
        );
        assert!("fifo".parse::<AdmissionPolicy>().is_err());
    }
}
