//! The bounded admission queue, its overload policies, and the
//! per-tenant fairness budgets.
//!
//! Submitters enqueue [`crate::JobRequest`]s here without ever touching
//! the lock manager; the dispatcher thread drains the queue into the
//! worker pool. The queue is the *only* place the open-loop front door
//! pushes back on offered load, and what it does when full is the
//! [`AdmissionPolicy`]:
//!
//! * [`AdmissionPolicy::Reject`] — bounce the new request back to its
//!   submitter (classic open-loop drop-tail; offered load above
//!   saturation shows up as a rising reject count);
//! * [`AdmissionPolicy::ShedOldest`] — admit the new request and shed
//!   the *oldest* queued one (its submitter is told via
//!   [`crate::Completion::Shed`]; under deadline pressure the oldest
//!   request is the one most likely to be dead on arrival anyway);
//! * [`AdmissionPolicy::LeastSlack`] — the deadline-aware policy: among
//!   the queued requests *and* the incoming one, shed whichever has the
//!   least remaining slack to its deadline — it is the job the system
//!   would miss anyway, so shedding it converts a certain deadline miss
//!   into freed capacity for a job that can still make it. Requests
//!   without a deadline have infinite slack and are shed last. When the
//!   incoming request itself has the least slack it is bounced
//!   synchronously ([`crate::SubmitOutcome::Shed`]) without entering the
//!   queue;
//! * [`AdmissionPolicy::Block`] — park the submitter until space frees
//!   up (turns the open loop into a closed loop at the bound — useful
//!   for replay and backpressure experiments, but it hides queueing
//!   collapse, which is exactly why it is not the load generator's
//!   default).
//!
//! **Fairness budgets.** Layered on top of the shed policy, an optional
//! per-tenant token bucket ([`FairnessConfig`]) keeps a high-rate tenant
//! from starving a low-rate one: every admitted request *charges* its
//! tenant an estimated service cost (the template's WCET scaled by the
//! run's tick), the bucket refills at a configured rate (typically each
//! tenant's fair share of the worker pool's service capacity), and when
//! a shed decision must pick a victim, tenants that are over budget lose
//! first — the victim is the least-slack request *among the over-budget
//! tenants' requests* whenever any exist, and the globally least-slack
//! request otherwise (see [`shed_victim`]). Shed requests refund their
//! charge, so a tenant is only ever billed for work that stayed
//! admitted. With fairness off (the default), every request is in the
//! same class and the policy is pure least-slack.
//!
//! Admission timestamps are taken *inside* the queue's critical section
//! at the moment the entry actually enters the queue, so queueing delay
//! (admission → worker start) is well defined even when a `Block`ed
//! submitter waited first.

use crate::front::{Completion, JobRequest};
use crate::runtime::dur_ns;
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// What the admission queue does with a new request when it is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Bounce the new request back to the submitter.
    Reject,
    /// Admit the new request, shedding the oldest queued one.
    ShedOldest,
    /// Shed the request (queued or incoming) with the least remaining
    /// slack to its deadline — the one the system would miss anyway.
    LeastSlack,
    /// Park the submitter until the queue has space.
    #[default]
    Block,
}

impl AdmissionPolicy {
    /// Every policy, in the order the documentation lists them.
    pub const ALL: [AdmissionPolicy; 4] = [
        AdmissionPolicy::Reject,
        AdmissionPolicy::ShedOldest,
        AdmissionPolicy::LeastSlack,
        AdmissionPolicy::Block,
    ];

    /// Short stable name, as printed by `Display` and parsed by
    /// `FromStr`.
    pub fn name(self) -> &'static str {
        match self {
            AdmissionPolicy::Reject => "reject",
            AdmissionPolicy::ShedOldest => "shed-oldest",
            AdmissionPolicy::LeastSlack => "least-slack",
            AdmissionPolicy::Block => "block",
        }
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for AdmissionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "reject" => Ok(AdmissionPolicy::Reject),
            "shed-oldest" | "shed" => Ok(AdmissionPolicy::ShedOldest),
            "least-slack" | "slack" => Ok(AdmissionPolicy::LeastSlack),
            "block" => Ok(AdmissionPolicy::Block),
            other => {
                // Match the ProtocolKind convention: the error lists
                // every valid name.
                let valid: Vec<&str> = AdmissionPolicy::ALL.iter().map(|p| p.name()).collect();
                Err(format!(
                    "unknown admission policy `{other}` (valid: {})",
                    valid.join(", ")
                ))
            }
        }
    }
}

/// Per-tenant admission fairness: a token bucket of *estimated service
/// nanoseconds* per tenant. See the module docs for how shed decisions
/// consult it; [`FairnessConfig::fair_share`] is the standard
/// construction (each tenant gets an equal share of the worker pool).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FairnessConfig {
    /// Budget a tenant accrues per wall-clock second, in estimated
    /// service nanoseconds.
    pub refill_per_sec: u64,
    /// Bucket capacity — the largest burst a tenant can spend at once.
    /// Also the debt floor: a tenant can owe at most one burst, so
    /// recovery after a backlog takes at most `burst_ns / refill_per_sec`
    /// seconds of silence.
    pub burst_ns: u64,
}

impl FairnessConfig {
    /// The standard construction: `threads` workers each serve ~1 s of
    /// work per second, split equally across `tenants` tenants, with a
    /// quarter-share burst allowance.
    pub fn fair_share(threads: usize, tenants: usize) -> Self {
        let refill = (threads.max(1) as u64).saturating_mul(1_000_000_000) / tenants.max(1) as u64;
        FairnessConfig {
            refill_per_sec: refill,
            burst_ns: (refill / 4).max(1),
        }
    }

    /// Budget an equal share of a *measured* capacity: `capacity`
    /// jobs/sec sustainably served, each costing `mean_cost_ns`
    /// estimated service nanoseconds. Prefer this over [`fair_share`]
    /// when contention puts the real ceiling well below the raw thread
    /// budget — a budget no tenant can exhaust enforces nothing.
    ///
    /// [`fair_share`]: FairnessConfig::fair_share
    pub fn for_capacity(capacity: f64, mean_cost_ns: f64, tenants: usize) -> Self {
        let refill = (capacity.max(0.0) * mean_cost_ns.max(0.0) / tenants.max(1) as f64) as u64;
        FairnessConfig {
            refill_per_sec: refill.max(1),
            burst_ns: (refill / 4).max(1),
        }
    }
}

/// One shed candidate as [`shed_victim`] sees it: its remaining slack to
/// deadline (negative = already past) and whether its tenant has
/// exhausted its fairness budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShedCandidate {
    /// `deadline - now` in nanoseconds; [`i64::MAX`] for requests
    /// without a deadline.
    pub slack_ns: i64,
    /// True when the candidate's tenant is over its fairness budget.
    /// Always false when fairness accounting is off.
    pub over_budget: bool,
}

/// The shed-victim rule of [`AdmissionPolicy::LeastSlack`], exposed as a
/// pure function so its invariants are directly testable:
///
/// * if any candidate's tenant is over budget, the victim is the
///   least-slack candidate *among the over-budget tenants* (fairness
///   outranks slack across tenants, slack breaks ties within the class);
/// * otherwise the victim is the least-slack candidate overall — so with
///   fairness off (or every tenant in budget), **no candidate with
///   positive slack is ever shed while a negative-slack candidate
///   exists**;
/// * ties go to the earliest index (the oldest queued request; callers
///   put the incoming request last, so queued requests shed first on
///   ties).
///
/// # Panics
/// Panics on an empty candidate list — a full queue always has at least
/// the incoming request as a candidate.
pub fn shed_victim(candidates: &[ShedCandidate]) -> usize {
    let any_over = candidates.iter().any(|c| c.over_budget);
    candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| !any_over || c.over_budget)
        .min_by_key(|(i, c)| (c.slack_ns, *i))
        .map(|(i, _)| i)
        .expect("shed_victim called with no candidates")
}

/// `deadline - now`, clamped into `i64`; requests without a deadline
/// have infinite slack.
fn slack_ns(deadline_ns: Option<u64>, now_ns: u64) -> i64 {
    match deadline_ns {
        None => i64::MAX,
        Some(d) => {
            (d.min(i64::MAX as u64) as i64).saturating_sub(now_ns.min(i64::MAX as u64) as i64)
        }
    }
}

/// Per-tenant shed/reject counters, drained into
/// [`crate::runtime::TenantStats`] when the front-end finishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct TenantCounts {
    pub tenant: u32,
    pub shed: u64,
    pub rejected: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct LedgerEntry {
    seen: bool,
    balance_ns: i64,
    last_ns: u64,
    shed: u64,
    rejected: u64,
}

/// The per-tenant accounting state: token-bucket balances plus
/// shed/reject counters (and per-template shed counts for the
/// per-priority shed telemetry). Lives inside the queue's critical
/// section, so every read and update is atomic with the admission
/// decision it informs.
struct TenantLedger {
    fairness: Option<FairnessConfig>,
    entries: Vec<LedgerEntry>,
    shed_by_txn: Vec<u64>,
}

impl TenantLedger {
    fn new(fairness: Option<FairnessConfig>, templates: usize) -> Self {
        TenantLedger {
            fairness,
            entries: Vec::new(),
            shed_by_txn: vec![0; templates],
        }
    }

    fn entry(&mut self, tenant: u32) -> &mut LedgerEntry {
        let idx = tenant as usize;
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, LedgerEntry::default());
        }
        &mut self.entries[idx]
    }

    /// Bring `tenant`'s bucket up to `now`: first sight starts a full
    /// bucket, later refreshes accrue `refill_per_sec` pro rata, capped
    /// at the burst.
    fn refresh(&mut self, tenant: u32, now_ns: u64) {
        let Some(f) = self.fairness else { return };
        let e = self.entry(tenant);
        if !e.seen {
            e.seen = true;
            e.balance_ns = f.burst_ns as i64;
            e.last_ns = now_ns;
            return;
        }
        let dt = now_ns.saturating_sub(e.last_ns);
        let refill = (dt as u128 * f.refill_per_sec as u128 / 1_000_000_000) as i64;
        e.balance_ns = (e.balance_ns.saturating_add(refill)).min(f.burst_ns as i64);
        e.last_ns = now_ns;
    }

    /// Charge an admitted request's estimated cost, clamped at the debt
    /// floor (one burst of debt).
    fn charge(&mut self, tenant: u32, cost_ns: u64, now_ns: u64) {
        let Some(f) = self.fairness else { return };
        self.refresh(tenant, now_ns);
        let floor = -(f.burst_ns as i64);
        let e = self.entry(tenant);
        e.balance_ns = e
            .balance_ns
            .saturating_sub(cost_ns.min(i64::MAX as u64) as i64)
            .max(floor);
    }

    /// Refund a shed request's charge — a tenant is only billed for work
    /// that stayed admitted.
    fn refund(&mut self, tenant: u32, cost_ns: u64, now_ns: u64) {
        let Some(f) = self.fairness else { return };
        self.refresh(tenant, now_ns);
        let e = self.entry(tenant);
        e.balance_ns = e
            .balance_ns
            .saturating_add(cost_ns.min(i64::MAX as u64) as i64)
            .min(f.burst_ns as i64);
    }

    fn in_debt(&mut self, tenant: u32) -> bool {
        self.fairness.is_some() && self.entry(tenant).balance_ns < 0
    }

    fn record_shed(&mut self, tenant: u32, txn: rtdb_types::TxnId) {
        self.entry(tenant).shed += 1;
        if let Some(slot) = self.shed_by_txn.get_mut(txn.index()) {
            *slot += 1;
        }
    }

    fn record_rejected(&mut self, tenant: u32) {
        self.entry(tenant).rejected += 1;
    }

    fn counters(&self) -> (Vec<TenantCounts>, Vec<u64>) {
        let counts = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.shed > 0 || e.rejected > 0)
            .map(|(tenant, e)| TenantCounts {
                tenant: tenant as u32,
                shed: e.shed,
                rejected: e.rejected,
            })
            .collect();
        (counts, self.shed_by_txn.clone())
    }
}

/// One admitted request, as it travels queue → dispatcher → worker.
pub(crate) struct Admitted {
    pub req: JobRequest,
    /// Submission ticket, for correlating completions.
    pub ticket: u64,
    /// Stamped inside the queue at the moment of admission.
    pub admitted_at: Instant,
    /// Estimated service cost (template WCET × tick), charged to the
    /// tenant's fairness bucket on admission and refunded on shed.
    pub cost_ns: u64,
    /// The submitter's completion channel.
    pub done: Sender<Completion>,
}

/// Outcome of [`AdmissionQueue::push`].
pub(crate) enum Push {
    /// Entered the queue.
    Admitted,
    /// Entered the queue; the returned entry was shed to make room
    /// ([`AdmissionPolicy::ShedOldest`] /
    /// [`AdmissionPolicy::LeastSlack`]).
    AdmittedShed(Box<Admitted>),
    /// Bounced: the incoming request itself had the least slack under
    /// [`AdmissionPolicy::LeastSlack`] and was shed without entering.
    SelfShed,
    /// Bounced: the queue was full under [`AdmissionPolicy::Reject`].
    Rejected,
    /// Bounced: the front-end has shut down.
    Closed,
}

struct Inner {
    q: VecDeque<Admitted>,
    closed: bool,
    ledger: TenantLedger,
}

/// A bounded MPSC queue: many submitters push, the dispatcher pops.
pub(crate) struct AdmissionQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    /// The front-end's `t0`: slack computations and bucket refills share
    /// the clock `release_ns`/`deadline_ns` are measured on.
    t0: Instant,
}

impl AdmissionQueue {
    pub(crate) fn new(
        capacity: usize,
        templates: usize,
        t0: Instant,
        fairness: Option<FairnessConfig>,
    ) -> Self {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                q: VecDeque::new(),
                closed: false,
                ledger: TenantLedger::new(fairness, templates),
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            t0,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn now_ns(&self) -> u64 {
        dur_ns(self.t0.elapsed())
    }

    /// Try to admit `item` under `policy`. Blocks only for
    /// [`AdmissionPolicy::Block`] on a full queue.
    pub(crate) fn push(&self, mut item: Admitted, policy: AdmissionPolicy) -> Push {
        let mut g = self.lock();
        loop {
            if g.closed {
                g.ledger.record_rejected(item.req.tenant);
                return Push::Closed;
            }
            if g.q.len() < self.capacity {
                let now = self.now_ns();
                g.ledger.charge(item.req.tenant, item.cost_ns, now);
                item.admitted_at = Instant::now();
                g.q.push_back(item);
                self.not_empty.notify_one();
                return Push::Admitted;
            }
            match policy {
                AdmissionPolicy::Reject => {
                    g.ledger.record_rejected(item.req.tenant);
                    return Push::Rejected;
                }
                AdmissionPolicy::ShedOldest => {
                    let old = g.q.pop_front().expect("full queue is non-empty");
                    let now = self.now_ns();
                    g.ledger.refund(old.req.tenant, old.cost_ns, now);
                    g.ledger.record_shed(old.req.tenant, old.req.txn);
                    g.ledger.charge(item.req.tenant, item.cost_ns, now);
                    item.admitted_at = Instant::now();
                    g.q.push_back(item);
                    self.not_empty.notify_one();
                    return Push::AdmittedShed(Box::new(old));
                }
                AdmissionPolicy::LeastSlack => {
                    let now = self.now_ns();
                    let inner = &mut *g;
                    // Bring every candidate tenant's bucket up to `now`
                    // before classifying, so debt reflects refills.
                    for j in inner.q.iter() {
                        inner.ledger.refresh(j.req.tenant, now);
                    }
                    inner.ledger.refresh(item.req.tenant, now);
                    let candidates: Vec<ShedCandidate> = inner
                        .q
                        .iter()
                        .chain(std::iter::once(&item))
                        .map(|j| ShedCandidate {
                            slack_ns: slack_ns(j.req.deadline_ns, now),
                            over_budget: inner.ledger.in_debt(j.req.tenant),
                        })
                        .collect();
                    let victim = shed_victim(&candidates);
                    if victim == inner.q.len() {
                        inner.ledger.record_shed(item.req.tenant, item.req.txn);
                        return Push::SelfShed;
                    }
                    let old = inner.q.remove(victim).expect("victim index in range");
                    inner.ledger.refund(old.req.tenant, old.cost_ns, now);
                    inner.ledger.record_shed(old.req.tenant, old.req.txn);
                    inner.ledger.charge(item.req.tenant, item.cost_ns, now);
                    item.admitted_at = Instant::now();
                    inner.q.push_back(item);
                    self.not_empty.notify_one();
                    return Push::AdmittedShed(Box::new(old));
                }
                AdmissionPolicy::Block => {
                    g = self
                        .not_full
                        .wait(g)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
    }

    /// Pop the oldest admitted request, blocking while the queue is open
    /// and empty. `None` once the queue is closed *and* drained.
    pub(crate) fn pop(&self) -> Option<Admitted> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.q.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self
                .not_empty
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Close the queue: further pushes bounce, pops drain what remains.
    pub(crate) fn close(&self) {
        let mut g = self.lock();
        g.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Queued (admitted, not yet dispatched) requests.
    pub(crate) fn len(&self) -> usize {
        self.lock().q.len()
    }

    /// Per-tenant shed/reject counters plus per-template shed counts.
    pub(crate) fn counters(&self) -> (Vec<TenantCounts>, Vec<u64>) {
        self.lock().ledger.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::TxnId;
    use std::sync::mpsc::channel;

    fn queue(capacity: usize) -> AdmissionQueue {
        AdmissionQueue::new(capacity, 4, Instant::now(), None)
    }

    fn item(ticket: u64) -> (Admitted, std::sync::mpsc::Receiver<Completion>) {
        let (tx, rx) = channel();
        (
            Admitted {
                req: JobRequest::new(TxnId(0)),
                ticket,
                admitted_at: Instant::now(),
                cost_ns: 0,
                done: tx,
            },
            rx,
        )
    }

    fn deadline_item(ticket: u64, tenant: u32, deadline_ns: u64, cost_ns: u64) -> Admitted {
        let (tx, _rx) = channel();
        std::mem::forget(_rx);
        Admitted {
            req: JobRequest::new(TxnId((ticket % 4) as u32))
                .with_deadline(deadline_ns)
                .for_tenant(tenant),
            ticket,
            admitted_at: Instant::now(),
            cost_ns,
            done: tx,
        }
    }

    #[test]
    fn reject_bounces_when_full() {
        let q = queue(2);
        for t in 0..2 {
            assert!(matches!(
                q.push(item(t).0, AdmissionPolicy::Reject),
                Push::Admitted
            ));
        }
        assert!(matches!(
            q.push(item(2).0, AdmissionPolicy::Reject),
            Push::Rejected
        ));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn shed_oldest_returns_the_oldest() {
        let q = queue(2);
        q.push(item(0).0, AdmissionPolicy::ShedOldest);
        q.push(item(1).0, AdmissionPolicy::ShedOldest);
        match q.push(item(2).0, AdmissionPolicy::ShedOldest) {
            Push::AdmittedShed(old) => assert_eq!(old.ticket, 0),
            _ => panic!("expected shed"),
        }
        let tickets: Vec<u64> = std::iter::from_fn(|| {
            q.close();
            q.pop().map(|a| a.ticket)
        })
        .collect();
        assert_eq!(tickets, vec![1, 2]);
    }

    #[test]
    fn block_waits_for_space() {
        let q = queue(1);
        q.push(item(0).0, AdmissionPolicy::Block);
        std::thread::scope(|s| {
            let pusher =
                s.spawn(|| matches!(q.push(item(1).0, AdmissionPolicy::Block), Push::Admitted));
            // Give the pusher a moment to park on the full queue, then
            // drain one entry to release it.
            std::thread::sleep(std::time::Duration::from_millis(5));
            assert_eq!(q.pop().expect("queued").ticket, 0);
            assert!(pusher.join().expect("pusher"));
        });
        assert_eq!(q.pop().expect("queued").ticket, 1);
    }

    #[test]
    fn close_drains_then_stops() {
        let q = queue(4);
        q.push(item(7).0, AdmissionPolicy::Reject);
        q.close();
        assert!(matches!(
            q.push(item(8).0, AdmissionPolicy::Block),
            Push::Closed
        ));
        assert_eq!(q.pop().expect("drains the backlog").ticket, 7);
        assert!(q.pop().is_none());
    }

    /// Satellite: the Display/FromStr round trip covers every policy —
    /// including `least-slack` — and the parse error lists every valid
    /// name, matching the `ProtocolKind` convention.
    #[test]
    fn policy_parses_and_displays() {
        for p in AdmissionPolicy::ALL {
            assert_eq!(p.to_string().parse::<AdmissionPolicy>(), Ok(p));
        }
        assert_eq!(
            "shed".parse::<AdmissionPolicy>(),
            Ok(AdmissionPolicy::ShedOldest)
        );
        assert_eq!(
            "slack".parse::<AdmissionPolicy>(),
            Ok(AdmissionPolicy::LeastSlack)
        );
        let err = "fifo".parse::<AdmissionPolicy>().unwrap_err();
        for p in AdmissionPolicy::ALL {
            assert!(
                err.contains(p.name()),
                "error does not list `{}`: {err}",
                p.name()
            );
        }
    }

    #[test]
    fn least_slack_sheds_the_tightest_deadline_first() {
        let q = queue(2);
        // Deadline 0 is already past (negative slack); one hour is ample.
        const HOUR: u64 = 3_600_000_000_000;
        q.push(deadline_item(0, 0, HOUR, 0), AdmissionPolicy::LeastSlack);
        q.push(deadline_item(1, 0, 0, 0), AdmissionPolicy::LeastSlack);
        match q.push(
            deadline_item(2, 0, 2 * HOUR, 0),
            AdmissionPolicy::LeastSlack,
        ) {
            Push::AdmittedShed(old) => assert_eq!(old.ticket, 1, "negative slack sheds first"),
            _ => panic!("expected a queued shed"),
        }
        // Now every queued deadline is looser than the incoming one:
        // the incoming request self-sheds.
        assert!(matches!(
            q.push(deadline_item(3, 0, 1, 0), AdmissionPolicy::LeastSlack),
            Push::SelfShed
        ));
        q.close();
        let tickets: Vec<u64> = std::iter::from_fn(|| q.pop().map(|a| a.ticket)).collect();
        assert_eq!(tickets, vec![0, 2]);
        let (counts, shed_by_txn) = q.counters();
        assert_eq!(counts.len(), 1);
        assert_eq!((counts[0].shed, counts[0].rejected), (2, 0));
        assert_eq!(shed_by_txn.iter().sum::<u64>(), 2);
    }

    #[test]
    fn requests_without_deadlines_have_infinite_slack() {
        let q = queue(1);
        q.push(item(0).0, AdmissionPolicy::LeastSlack);
        // Incoming with a (past) deadline has less slack than the queued
        // deadline-free request: it self-sheds.
        assert!(matches!(
            q.push(deadline_item(1, 0, 0, 0), AdmissionPolicy::LeastSlack),
            Push::SelfShed
        ));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn over_budget_tenants_shed_first_regardless_of_slack() {
        const HOUR: u64 = 3_600_000_000_000;
        // Zero refill: a tenant that spends its 1 ns burst is in debt
        // until the end of the run.
        let fairness = FairnessConfig {
            refill_per_sec: 0,
            burst_ns: 1,
        };
        let q = AdmissionQueue::new(2, 4, Instant::now(), Some(fairness));
        // Tenant 1 charges far past its burst; tenant 0 stays in budget.
        q.push(
            deadline_item(0, 1, 2 * HOUR, 1_000_000),
            AdmissionPolicy::LeastSlack,
        );
        q.push(deadline_item(1, 0, HOUR, 0), AdmissionPolicy::LeastSlack);
        // Queue full. The incoming tenant-0 request has the least slack
        // of all three, but tenant 1 is over budget — its job loses.
        match q.push(deadline_item(2, 0, 1, 0), AdmissionPolicy::LeastSlack) {
            Push::AdmittedShed(old) => {
                assert_eq!(old.ticket, 0, "the debtor's job is the victim")
            }
            _ => panic!("expected the over-budget tenant's job to shed"),
        }
        let (counts, _) = q.counters();
        let debtor = counts.iter().find(|c| c.tenant == 1).expect("tenant 1");
        assert_eq!(debtor.shed, 1);
    }

    #[test]
    fn fairness_budget_refills_over_time() {
        let f = FairnessConfig {
            refill_per_sec: 1_000_000_000,
            burst_ns: 500_000_000,
        };
        let mut ledger = TenantLedger::new(Some(f), 1);
        ledger.charge(0, 700_000_000, 0);
        assert!(ledger.in_debt(0), "burst 0.5s, charge 0.7s: in debt");
        // 0.3 s later the bucket has refilled past zero.
        ledger.refresh(0, 300_000_000);
        assert!(!ledger.in_debt(0), "refill restored the balance");
        // Refunds are capped at the burst.
        ledger.refund(0, u64::MAX, 300_000_000);
        assert_eq!(ledger.entry(0).balance_ns, f.burst_ns as i64);
    }

    #[test]
    fn for_capacity_budgets_the_measured_ceiling() {
        // 10k jobs/s at 40µs each = 0.4s of service per second, split
        // across two tenants; never zero even for degenerate inputs.
        let f = FairnessConfig::for_capacity(10_000.0, 40_000.0, 2);
        assert_eq!(f.refill_per_sec, 200_000_000);
        assert_eq!(f.burst_ns, 50_000_000);
        let degenerate = FairnessConfig::for_capacity(0.0, 0.0, 0);
        assert_eq!(degenerate.refill_per_sec, 1);
        assert_eq!(degenerate.burst_ns, 1);
    }

    #[test]
    fn shed_victim_prefers_debtors_then_least_slack() {
        let c = |slack_ns: i64, over_budget: bool| ShedCandidate {
            slack_ns,
            over_budget,
        };
        // No debtors: pure least slack, ties to the earliest index.
        assert_eq!(shed_victim(&[c(5, false), c(-3, false), c(9, false)]), 1);
        assert_eq!(shed_victim(&[c(4, false), c(4, false)]), 0);
        // A debtor loses even with the most slack.
        assert_eq!(shed_victim(&[c(-10, false), c(100, true), c(3, false)]), 1);
        // Among debtors, least slack.
        assert_eq!(shed_victim(&[c(7, true), c(2, true), c(-1, false)]), 1);
    }
}
