//! Benchmark harness for the PCP-DA reproduction.
//!
//! * `src/bin/figures.rs` — regenerates **every table and figure** of the
//!   paper (experiments E1–E11 of DESIGN.md) as text, and emits
//!   machine-readable JSON records used by EXPERIMENTS.md;
//! * `src/bin/rtload.rs` — the runtime load generator (closed-loop job
//!   queues plus the [`loadgen`] open-loop saturation sweep), emitting
//!   `BENCH_rt.json`;
//! * `benches/` — Criterion micro- and macro-benchmarks: lock-decision
//!   latency per protocol, full-engine simulation throughput,
//!   schedulability-analysis throughput and the correctness oracles.
//!
//! Shared helpers live here. The protocol line-up everywhere in the
//! harness derives from the registry ([`ProtocolKind::STANDARD`] via
//! [`rtdb::sim::sweep::standard_protocols`]) — there is no local list.

#![forbid(unsafe_code)]

pub mod harness;
pub mod loadgen;
pub mod netload;

use rtdb::prelude::*;

/// A mid-sized standard workload used by several benches: 6 templates,
/// 60% utilization, moderate contention.
pub fn standard_workload(seed: u64) -> TransactionSet {
    WorkloadParams {
        templates: 6,
        items: 16,
        target_utilization: 0.6,
        hotspot_items: 3,
        hotspot_prob: 0.5,
        write_fraction: 0.4,
        seed,
        ..Default::default()
    }
    .generate()
    .expect("standard workload is valid")
    .set
}

/// The read-heavy workload family for the snapshot-read experiments:
/// `read_fraction` of the templates are pure readers (the rest write),
/// and item popularity follows a Zipfian of exponent `theta` over a
/// 32-item pool (`theta = 0.0` is uniform). 95/5 at θ ∈ {0, 0.6, 0.9}
/// is the line-up `rtload` sweeps snapshot-on vs snapshot-off.
pub fn read_heavy_workload(seed: u64, read_fraction: f64, theta: f64) -> TransactionSet {
    assert!(
        (0.0..=1.0).contains(&read_fraction),
        "read fraction must be in [0, 1]"
    );
    let templates = 20;
    let read_only = (read_fraction * templates as f64).round() as usize;
    WorkloadParams {
        templates,
        items: 32,
        target_utilization: 0.6,
        hotspot_items: 0,
        hotspot_prob: 0.0,
        zipf_theta: Some(theta),
        read_only_templates: read_only.min(templates),
        write_fraction: 0.6,
        seed,
        ..Default::default()
    }
    .generate()
    .expect("read-heavy workload is valid")
    .set
}

/// The write-heavy Zipfian-hotspot workload family for the early-release
/// experiments: item popularity follows Zipf(θ) over a small 16-item
/// pool, 90% of data steps write (read locks never retire, so a
/// read-mixed hotspot would re-serialize on body-length read holds),
/// transactions are long (3–6 data steps), and each template accesses
/// its hottest item *first* (`hot_first`) — so a blocking protocol pins
/// the hot write lock across the whole remaining body, which is exactly
/// the window early lock release (Bamboo / Brook-2PL) exists to shrink.
/// θ = 0 falls back to the legacy two-tier hotspot item picker for the
/// sweep's baseline point. `rtload --skew θ` selects this family; the
/// default full line-up sweeps θ ∈ {0, 0.6, 0.9, 1.2} over the
/// early-release kinds and the blocking baselines.
pub fn hotspot_workload(seed: u64, theta: f64) -> TransactionSet {
    WorkloadParams {
        templates: 8,
        items: 16,
        target_utilization: 0.6,
        min_data_steps: 3,
        max_data_steps: 6,
        hotspot_items: 3,
        hotspot_prob: 0.5,
        zipf_theta: Some(theta),
        write_fraction: 0.9,
        hot_first: true,
        seed,
        ..Default::default()
    }
    .generate()
    .expect("hotspot workload is valid")
    .set
}

/// The partitioned-Zipfian workload family for the sharded-manager
/// sweeps: a 32-item pool split across `partitions` partitions under the
/// shared router rule (`item mod partitions`), Zipf(0.7) skew *within*
/// each partition, and `cross_fraction` of the data steps sent to a
/// foreign partition — the cross-shard traffic knob `rtload --shards`
/// exposes. With `cross_fraction = 0` every template is single-shard by
/// construction.
pub fn partitioned_workload(seed: u64, partitions: usize, cross_fraction: f64) -> TransactionSet {
    WorkloadParams {
        templates: 8,
        items: 32,
        target_utilization: 0.6,
        hotspot_items: 0,
        hotspot_prob: 0.0,
        zipf_theta: Some(0.7),
        partitions,
        cross_partition_prob: cross_fraction,
        write_fraction: 0.4,
        seed,
        ..Default::default()
    }
    .generate()
    .expect("partitioned workload is valid")
    .set
}

/// A high-contention workload (every access in a 3-item hotspot).
pub fn contended_workload(seed: u64) -> TransactionSet {
    WorkloadParams {
        templates: 6,
        items: 8,
        target_utilization: 0.6,
        hotspot_items: 3,
        hotspot_prob: 0.95,
        write_fraction: 0.5,
        seed,
        ..Default::default()
    }
    .generate()
    .expect("contended workload is valid")
    .set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_valid_workloads() {
        assert_eq!(
            rtdb::sim::sweep::standard_protocols().len(),
            ProtocolKind::STANDARD.len()
        );
        let w = standard_workload(1);
        assert!(w.total_utilization() > 0.3);
        let c = contended_workload(1);
        assert!(!c.items().is_empty());
    }

    #[test]
    fn partitioned_workload_confines_templates_without_crossings() {
        let w = partitioned_workload(1, 4, 0.0);
        let router = rtdb_core::ShardRouter::new(4);
        for t in w.templates() {
            let shards: std::collections::BTreeSet<usize> =
                t.access_set().iter().map(|&i| router.shard_of(i)).collect();
            assert!(shards.len() <= 1, "template spans shards at cross 0");
        }
        // A positive cross fraction produces at least one spanning
        // template on this seed.
        let w = partitioned_workload(1, 4, 0.5);
        let spanning = w.templates().iter().any(|t| {
            t.access_set()
                .iter()
                .map(|&i| router.shard_of(i))
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                > 1
        });
        assert!(
            spanning,
            "cross fraction 0.5 produced no cross-shard template"
        );
    }

    #[test]
    fn read_heavy_workload_respects_read_fraction() {
        let w = read_heavy_workload(1, 0.95, 0.9);
        let readers = w.templates().iter().filter(|t| t.is_read_only()).count();
        assert_eq!(readers, 19, "95% of 20 templates must be pure readers");
        assert!(w.templates().iter().any(|t| !t.is_read_only()));
    }
}
