//! Open-loop load generation *through the TCP edge*: the same schedules
//! as [`crate::loadgen`], submitted by real socket clients against
//! [`rtdb::net::serve`] on loopback instead of the in-process submitter.
//!
//! One [`NetClient`] per tenant pipelines submissions paced to the
//! arrival schedule, draining responses opportunistically between
//! arrivals so neither side's buffers grow with the run length. After
//! the last arrival the driver waits for every submission's terminal
//! response (committed / shed / rejected) — within a generous timeout —
//! so the run's [`rt::RtResult`] accounting is complete before the
//! server shuts down.

use crate::loadgen::{
    arrival_schedule, finish_report, front_config, OpenLoopParams, OpenLoopReport,
};
use rtdb::net::{serve, NetClient, NetConfig, Request, Response};
use rtdb::prelude::*;
use std::time::{Duration, Instant};

/// How long the driver waits for stragglers' terminal responses after
/// the last submission before giving up (the server still drains and
/// counts them; only the client-side tally stops).
const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);

/// Count one response into the per-client tallies; returns whether it
/// was terminal.
fn tally(resp: &Response, accepted: &mut u64, terminal: &mut u64) {
    if resp.is_terminal() {
        *terminal += 1;
    } else {
        *accepted += 1;
    }
}

/// Execute one open-loop run through the loopback TCP edge. Mirrors
/// [`crate::loadgen::run_open_loop`] — same schedule, same deadline
/// convention (`release + period·tick`), same report shape — with the
/// submitter replaced by per-tenant socket clients.
pub fn run_net_open_loop(
    set: &TransactionSet,
    p: &OpenLoopParams,
) -> std::io::Result<OpenLoopReport> {
    let schedule = arrival_schedule(set, p);
    let net = NetConfig::new(front_config(set, p));
    let (result, admitted) = serve(set, net, |addr| -> std::io::Result<u64> {
        let tenants = p.tenants();
        let mut clients: Vec<NetClient> = (0..tenants)
            .map(|_| NetClient::connect(addr))
            .collect::<std::io::Result<_>>()?;
        let mut accepted = vec![0u64; tenants];
        let mut terminal = vec![0u64; tenants];
        let mut submitted = vec![0u64; tenants];
        let t0 = Instant::now();
        for (i, a) in schedule.iter().enumerate() {
            // Pace to the schedule on the driver's own clock (the
            // server's epoch starts a few connection-setup microseconds
            // earlier; deadline margins absorb that skew).
            let now = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            if a.at_ns > now {
                let wait = a.at_ns - now;
                if wait > 200_000 {
                    std::thread::sleep(Duration::from_nanos(wait - 100_000));
                }
                while (t0.elapsed().as_nanos() as u64) < a.at_ns {
                    std::hint::spin_loop();
                }
            }
            let tenant = a.tenant as usize;
            let period = set.template(a.txn).period.raw();
            let horizon = period
                .saturating_mul(p.tick_ns)
                .saturating_mul(p.deadline_scale.max(1));
            clients[tenant].submit(Request::Submit {
                ticket: i as u64,
                txn: a.txn.0,
                tenant: a.tenant,
                release_ns: a.at_ns,
                deadline_ns: Some(a.at_ns.saturating_add(horizon)),
            })?;
            submitted[tenant] += 1;
            // Opportunistic drain keeps response buffers flat.
            while let Some(resp) = clients[tenant].poll_response()? {
                tally(&resp, &mut accepted[tenant], &mut terminal[tenant]);
            }
        }
        // Wait for every submission's terminal response.
        let drain_deadline = Instant::now() + DRAIN_TIMEOUT;
        while terminal.iter().zip(&submitted).any(|(t, s)| t < s) && Instant::now() < drain_deadline
        {
            let mut progressed = false;
            for (c, client) in clients.iter_mut().enumerate() {
                while let Some(resp) = client.poll_response()? {
                    tally(&resp, &mut accepted[c], &mut terminal[c]);
                    progressed = true;
                }
            }
            if !progressed {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        Ok(accepted.iter().sum())
    })?;
    let admitted = admitted?;
    Ok(finish_report(p, &schedule, admitted, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{run_open_loop, service_capacity, Interarrival};
    use rtdb::rt;

    /// The networked run conserves offered load exactly like the
    /// in-process run, per tenant, under least-slack overload.
    #[test]
    fn net_open_loop_conserves_offered_load_per_tenant() {
        let set = crate::standard_workload(7);
        let p = OpenLoopParams {
            kind: ProtocolKind::PcpDa,
            manager: rt::ManagerKind::Mutex,
            threads: 2,
            tick_ns: 2_000,
            jobs: 80,
            arrival_rate: 4.0 * service_capacity(&set, 2, 2_000),
            interarrival: Interarrival::Exponential,
            policy: rt::AdmissionPolicy::LeastSlack,
            capacity: 4,
            snapshot: false,
            shards: 1,
            tenant_weights: vec![1, 4],
            fairness: Some(rt::FairnessConfig::fair_share(2, 2)),
            deadline_scale: 1,
            seed: 11,
        };
        let r = run_net_open_loop(&set, &p).expect("net run");
        assert_eq!(r.offered, p.jobs as u64);
        assert_eq!(r.offered_by_tenant.iter().sum::<u64>(), r.offered);
        assert_eq!(
            r.result.committed + r.result.shed + r.result.rejected,
            r.offered,
            "jobs leaked through the socket"
        );
        for row in &r.result.tenants {
            assert_eq!(
                row.offered(),
                r.offered_by_tenant[row.tenant as usize],
                "tenant {} accounting diverged",
                row.tenant
            );
        }
        // The same params through the in-process path agree on offered
        // load split (the schedules are identical by construction).
        let in_proc = run_open_loop(&set, &p);
        assert_eq!(in_proc.offered_by_tenant, r.offered_by_tenant);
    }
}
