//! Open-loop load generation for `rtload`.
//!
//! The closed loop (`rt::run` over a prebuilt job list) measures *service
//! capacity*: workers are never idle, so throughput is the ceiling and
//! latency is pure contention. The open loop here measures behaviour
//! *under offered load*: arrivals follow a seeded stochastic schedule
//! that does not slow down when the system does, which is the regime
//! where queueing collapse and deadline misses actually appear.
//!
//! The pieces:
//!
//! * [`arrival_schedule`] — a deterministic merged arrival sequence;
//!   per-template rates are proportional to `1/period` (faster templates
//!   arrive more often, as in the periodic model) and normalised to the
//!   requested aggregate rate, with seeded per-template phasing so the
//!   templates do not arrive in lock-step;
//! * [`run_open_loop`] — drives [`rt::run_front`]: the current thread
//!   plays the submitter, pacing itself to the schedule; each request
//!   carries `release = scheduled arrival` and
//!   `deadline = release + period·tick`, so misses are judged against
//!   the *intended* release, exactly like the simulator's periodic model;
//! * [`saturation_sweep`] — re-runs the same schedule shape at
//!   `rate·k/points` for `k = 1..=points`, producing the monotone
//!   offered-load axis of the saturation curve in `BENCH_rt.json`;
//! * [`service_capacity`] — a first-order estimate of the sustainable
//!   job rate (`threads / mean service time`), used to pick a default
//!   sweep top that is guaranteed to push past saturation.

use rtdb::prelude::*;
use rtdb::rt;
use rtdb_util::Rng;

/// The interarrival process of the open-loop schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Interarrival {
    /// Exponential gaps (Poisson arrivals) — the classic open-loop model.
    #[default]
    Exponential,
    /// Fixed gaps at each template's rate, with a seeded phase offset.
    Periodic,
}

impl std::fmt::Display for Interarrival {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Interarrival::Exponential => "exp",
            Interarrival::Periodic => "periodic",
        })
    }
}

impl std::str::FromStr for Interarrival {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "exp" | "exponential" | "poisson" => Ok(Interarrival::Exponential),
            "periodic" | "fixed" => Ok(Interarrival::Periodic),
            other => Err(format!(
                "unknown interarrival process `{other}` (expected exp or periodic)"
            )),
        }
    }
}

/// Configuration of one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopParams {
    pub kind: ProtocolKind,
    /// Lock-manager implementation driving the worker pool.
    pub manager: rt::ManagerKind,
    pub threads: usize,
    /// Wall-clock nanoseconds per simulated tick, for both the workers'
    /// busy-work and the deadline scale.
    pub tick_ns: u64,
    /// Total offered jobs (across all templates).
    pub jobs: usize,
    /// Aggregate offered rate, jobs per second.
    pub arrival_rate: f64,
    pub interarrival: Interarrival,
    pub policy: rt::AdmissionPolicy,
    /// Admission queue bound.
    pub capacity: usize,
    /// Offer read-only jobs the lock-exempt snapshot path.
    pub snapshot: bool,
    /// Lock-manager shards (1 = unsharded, the legacy behaviour).
    pub shards: usize,
    /// Relative offered-rate weights per tenant. Empty or single-entry
    /// means the legacy single-tenant schedule (tenant 0, byte-identical
    /// arrival stream to earlier releases); `[1, 4]` is two tenants with
    /// tenant 1 offering 4× tenant 0's rate.
    pub tenant_weights: Vec<u64>,
    /// Per-tenant fairness budgets handed to the admission queue.
    pub fairness: Option<rt::FairnessConfig>,
    /// Deadline-laxity multiplier: each job's deadline is
    /// `release + period·tick·deadline_scale`. 1 is the legacy periodic
    /// convention (deadline = next release); the overload scenario uses
    /// a laxer scale so that head-of-queue jobs *can* meet their
    /// deadlines and shed-protection shows up in the miss numbers.
    pub deadline_scale: u64,
    pub seed: u64,
}

impl OpenLoopParams {
    /// Number of tenants the schedule spreads arrivals across.
    pub fn tenants(&self) -> usize {
        self.tenant_weights.len().max(1)
    }
}

/// One scheduled arrival: a template released at an offset from run
/// start, billed to a tenant.
#[derive(Clone, Copy, Debug)]
pub struct Arrival {
    pub at_ns: u64,
    pub txn: TxnId,
    pub tenant: u32,
}

/// First-order service-capacity estimate in jobs/sec: `threads` workers,
/// each serving one job of mean WCET at `tick_ns` per tick. Queueing and
/// blocking only lower the real ceiling, so offered load above this is
/// guaranteed to saturate.
pub fn service_capacity(set: &TransactionSet, threads: usize, tick_ns: u64) -> f64 {
    let mean_wcet: f64 = set
        .templates()
        .iter()
        .map(|t| t.wcet().raw() as f64)
        .sum::<f64>()
        / set.len() as f64;
    let service_ns = (mean_wcet * tick_ns as f64).max(1.0);
    threads as f64 * 1e9 / service_ns
}

/// Build the merged, time-sorted arrival schedule for `p.jobs` arrivals.
///
/// Deterministic in `(set, p)`: each `(tenant, template)` stream gets its
/// own split of the seed, so adding sweep points or reordering runs never
/// perturbs a stream's arrival pattern. With no tenant weights (the
/// legacy single-tenant case) the arrival stream is byte-identical to
/// earlier releases, so existing baselines keep matching.
pub fn arrival_schedule(set: &TransactionSet, p: &OpenLoopParams) -> Vec<Arrival> {
    assert!(p.arrival_rate > 0.0, "arrival rate must be positive");
    let weights: Vec<f64> = set
        .templates()
        .iter()
        .map(|t| 1.0 / t.period.raw() as f64)
        .collect();
    let wsum: f64 = weights.iter().sum();
    let mut root = Rng::seed(p.seed ^ 0x4f50_454e); // "OPEN"

    // Tenant rate shares: the legacy path is a single full-rate tenant.
    let tenant_weights: Vec<u64> = if p.tenant_weights.len() > 1 {
        p.tenant_weights.clone()
    } else {
        vec![1]
    };
    let twsum: f64 = tenant_weights.iter().map(|&w| w.max(1) as f64).sum();

    let mut arrivals: Vec<Arrival> = Vec::with_capacity(p.jobs * set.len());
    for (tenant, &tw) in tenant_weights.iter().enumerate() {
        let tenant_rate = p.arrival_rate * tw.max(1) as f64 / twsum;
        for (t, w) in set.templates().iter().zip(&weights) {
            let rate = tenant_rate * w / wsum;
            let gap_ns = 1e9 / rate;
            let mut rng = root.split();
            // Seeded phase: spread stream starts across one mean gap.
            let mut at = rng.f64() * gap_ns;
            for _ in 0..p.jobs {
                arrivals.push(Arrival {
                    at_ns: at as u64,
                    txn: t.id,
                    tenant: tenant as u32,
                });
                at += match p.interarrival {
                    Interarrival::Exponential => -(1.0 - rng.f64()).ln() * gap_ns,
                    Interarrival::Periodic => gap_ns,
                };
            }
        }
    }
    // Earliest `p.jobs` arrivals overall; ties broken by template then
    // tenant so the merge is deterministic.
    arrivals.sort_by_key(|a| (a.at_ns, a.txn.0, a.tenant));
    arrivals.truncate(p.jobs);
    arrivals
}

/// Everything one open-loop run produces, ready for JSON folding.
pub struct OpenLoopReport {
    pub params: OpenLoopParams,
    /// Scheduled arrivals (== `params.jobs`).
    pub offered: u64,
    /// Scheduled arrivals per tenant (sums to `offered`).
    pub offered_by_tenant: Vec<u64>,
    /// Submissions the admission queue accepted (committed + later-shed;
    /// least-slack self-sheds are *not* accepted).
    pub admitted: u64,
    pub result: rt::RtResult,
    /// Admission → worker-start delay of committed jobs.
    pub queue_hist: rt::LatencyHistogram,
    /// Worker-start → commit service time of committed jobs.
    pub service_hist: rt::LatencyHistogram,
}

impl OpenLoopReport {
    /// Offered rate actually realised by the schedule, jobs/sec, derived
    /// from the last scheduled arrival (differs from the nominal rate by
    /// sampling noise).
    pub fn offered_rate(&self) -> f64 {
        self.params.arrival_rate
    }
}

/// Execute one open-loop run: pace the schedule, submit through the
/// admission front-end, split each committed job's latency into queueing
/// and service histograms.
pub fn run_open_loop(set: &TransactionSet, p: &OpenLoopParams) -> OpenLoopReport {
    let schedule = arrival_schedule(set, p);
    let config = front_config(set, p);
    let (result, admitted) = rt::run_front(set, config, |front| {
        let (sub, _rx) = front.submitter();
        let mut admitted = 0u64;
        for a in &schedule {
            // Pace to the schedule: coarse sleep for long waits, then a
            // short spin so submit lateness stays well under the
            // deadline scale.
            let now = front.elapsed_ns();
            if a.at_ns > now {
                let wait = a.at_ns - now;
                if wait > 200_000 {
                    std::thread::sleep(std::time::Duration::from_nanos(wait - 100_000));
                }
                while front.elapsed_ns() < a.at_ns {
                    std::hint::spin_loop();
                }
            }
            let mut req =
                rt::JobRequest::periodic(set, a.txn, a.at_ns, p.tick_ns).for_tenant(a.tenant);
            if p.deadline_scale > 1 {
                let period = set.template(a.txn).period.raw();
                req.deadline_ns = Some(
                    a.at_ns.saturating_add(
                        period
                            .saturating_mul(p.tick_ns)
                            .saturating_mul(p.deadline_scale),
                    ),
                );
            }
            if let rt::SubmitOutcome::Admitted { .. } = sub.submit(req) {
                admitted += 1;
            }
        }
        admitted
    });

    finish_report(p, &schedule, admitted, result)
}

/// The [`rt::FrontConfig`] an open-loop run (in-process or networked)
/// drives.
pub fn front_config(_set: &TransactionSet, p: &OpenLoopParams) -> rt::FrontConfig {
    let mut config = rt::FrontConfig::new(p.kind)
        .with_policy(p.policy)
        .with_capacity(p.capacity)
        .with_rt(
            rt::RtConfig::new(p.kind)
                .with_threads(p.threads)
                .with_tick_ns(p.tick_ns)
                .with_manager(p.manager)
                .with_snapshot_reads(p.snapshot)
                .with_shards(p.shards.max(1)),
        );
    if let Some(f) = p.fairness {
        config = config.with_fairness(f);
    }
    config
}

/// Fold a finished run into an [`OpenLoopReport`] (shared with the
/// networked path in `netload`).
pub(crate) fn finish_report(
    p: &OpenLoopParams,
    schedule: &[Arrival],
    admitted: u64,
    result: rt::RtResult,
) -> OpenLoopReport {
    let mut offered_by_tenant = vec![0u64; p.tenants()];
    for a in schedule {
        offered_by_tenant[a.tenant as usize] += 1;
    }
    let mut queue_hist = rt::LatencyHistogram::new();
    let mut service_hist = rt::LatencyHistogram::new();
    for job in &result.jobs {
        queue_hist.record(job.queue_ns);
        service_hist.record(job.service_ns);
    }
    OpenLoopReport {
        params: p.clone(),
        offered: schedule.len() as u64,
        offered_by_tenant,
        admitted,
        result,
        queue_hist,
        service_hist,
    }
}

/// Run the same schedule shape at `k/points` of the top rate for
/// `k = 1..=points`: a monotone offered-load sweep ending at
/// `base.arrival_rate`.
pub fn saturation_sweep(
    set: &TransactionSet,
    base: &OpenLoopParams,
    points: usize,
) -> Vec<OpenLoopReport> {
    assert!(points > 0, "sweep needs at least one point");
    (1..=points)
        .map(|k| {
            let mut p = base.clone();
            p.arrival_rate = base.arrival_rate * k as f64 / points as f64;
            run_open_loop(set, &p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(rate: f64) -> OpenLoopParams {
        OpenLoopParams {
            kind: ProtocolKind::PcpDa,
            manager: rt::ManagerKind::Mutex,
            threads: 2,
            tick_ns: 2_000,
            jobs: 60,
            arrival_rate: rate,
            interarrival: Interarrival::Exponential,
            policy: rt::AdmissionPolicy::Reject,
            capacity: 2,
            snapshot: false,
            shards: 1,
            tenant_weights: Vec::new(),
            fairness: None,
            deadline_scale: 1,
            seed: 7,
        }
    }

    #[test]
    fn multi_tenant_schedule_splits_rate_by_weight() {
        let set = crate::standard_workload(7);
        let mut p = params(50_000.0);
        // Single-tenant schedules ignore a 1-entry weight vector: the
        // legacy stream must stay byte-identical.
        let legacy = arrival_schedule(&set, &p);
        p.tenant_weights = vec![3];
        let one = arrival_schedule(&set, &p);
        assert!(legacy
            .iter()
            .zip(&one)
            .all(|(a, b)| a.at_ns == b.at_ns && a.txn == b.txn && a.tenant == b.tenant));
        assert!(legacy.iter().all(|a| a.tenant == 0));

        // Two tenants at 1:4 — the heavy tenant dominates the truncated
        // earliest-arrivals window roughly in proportion.
        p.tenant_weights = vec![1, 4];
        p.jobs = 500;
        let multi = arrival_schedule(&set, &p);
        assert_eq!(multi.len(), 500);
        let heavy = multi.iter().filter(|a| a.tenant == 1).count();
        let light = multi.len() - heavy;
        assert!(light > 0, "light tenant never scheduled");
        assert!(
            heavy > 2 * light,
            "weight 4 tenant not dominant: {heavy} vs {light}"
        );
        // Deterministic.
        let again = arrival_schedule(&set, &p);
        assert!(multi
            .iter()
            .zip(&again)
            .all(|(a, b)| a.at_ns == b.at_ns && a.txn == b.txn && a.tenant == b.tenant));
    }

    #[test]
    fn schedule_is_deterministic_sorted_and_rate_scaled() {
        let set = crate::standard_workload(7);
        let p = params(50_000.0);
        let a = arrival_schedule(&set, &p);
        let b = arrival_schedule(&set, &p);
        assert_eq!(a.len(), p.jobs);
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.at_ns == y.at_ns && x.txn == y.txn));
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        // Doubling the rate compresses the schedule: the last arrival of
        // the faster schedule lands earlier.
        let fast = arrival_schedule(&set, &params(100_000.0));
        assert!(fast.last().unwrap().at_ns < a.last().unwrap().at_ns);
        // Every template appears: rates are proportional, not exclusive.
        for t in set.templates() {
            assert!(a.iter().any(|x| x.txn == t.id), "{:?} never arrives", t.id);
        }
    }

    #[test]
    fn sweep_is_monotone_in_offered_load_and_accounts_for_every_job() {
        let set = crate::standard_workload(7);
        // Top rate far above capacity so the last point must saturate.
        let top = 20.0 * service_capacity(&set, 2, 2_000);
        let reports = saturation_sweep(&set, &params(top), 3);
        assert_eq!(reports.len(), 3);
        let rates: Vec<f64> = reports.iter().map(OpenLoopReport::offered_rate).collect();
        assert!(rates.windows(2).all(|w| w[0] < w[1]), "{rates:?}");
        for r in &reports {
            assert_eq!(r.offered, r.params.jobs as u64);
            assert_eq!(
                r.result.committed + r.result.shed + r.result.rejected,
                r.offered,
                "jobs leaked at rate {}",
                r.params.arrival_rate
            );
            assert_eq!(r.admitted, r.result.committed + r.result.shed);
            let ratio = r.result.miss_ratio();
            assert!((0.0..=1.0).contains(&ratio));
            // Decomposition feeds the split histograms 1:1.
            assert_eq!(r.queue_hist.count(), r.result.committed);
            assert_eq!(r.service_hist.count(), r.result.committed);
        }
        // At 20x capacity with a 2-deep Reject queue, the schedule front
        // outruns the workers by construction: drops are certain.
        let top_point = reports.last().unwrap();
        assert!(
            top_point.result.rejected > 0,
            "no drops at 20x capacity: {:?}",
            (top_point.result.committed, top_point.result.rejected)
        );
    }
}
