//! Closed-loop load generator for the threaded runtime: emit
//! `BENCH_rt.json` with throughput (committed txns/sec) and per-priority
//! latency quantiles for the runtime executing the standard workload on
//! real OS threads.
//!
//! ```sh
//! cargo run --release -p rtdb-bench --bin rtload                  # STANDARD line-up -> ./BENCH_rt.json
//! cargo run --release -p rtdb-bench --bin rtload -- --threads 8 --kind pcp-da --seed 7
//! cargo run --release -p rtdb-bench --bin rtload -- --check       # advisory regression check
//! ```
//!
//! Methodology: a deterministic seeded job queue (`rt::job_list`) is
//! drained by `--threads` workers under each protocol; every job runs to
//! commit (aborts restart it), so `committed == jobs` always and the
//! interesting numbers are wall-clock throughput and the per-priority
//! latency distribution (p50/p95/p99/max over begin→commit, measured on
//! a log-bucketed histogram, `rt::LatencyHistogram`). `--tick-ns` scales
//! each step's simulated duration to wall-clock busy-work; the default
//! keeps a full line-up under a second while still letting blocking shape
//! the tail.
//!
//! `--check [baseline.json]` measures without writing and **warns**
//! (exit 0 — wall-clock throughput of a threaded run on a shared CI box
//! is too noisy to gate merges on) when throughput drops more than 25%
//! against a baseline record with the same protocol, threads, jobs and
//! tick-ns; mismatched configurations are skipped.

use rtdb::prelude::*;
use rtdb::rt;
use rtdb_util::Json;

const DEFAULT_THREADS: usize = 4;
const DEFAULT_JOBS: usize = 400;
const DEFAULT_TICK_NS: u64 = 2_000;
const DEFAULT_SEED: u64 = 7;
/// Advisory tolerance: a warning is printed when committed-txns/sec
/// drops by more than this fraction against a same-config baseline.
const REGRESSION_TOLERANCE: f64 = 0.25;

struct Args {
    check: bool,
    /// `None` = the full [`ProtocolKind::STANDARD`] line-up.
    kind: Option<ProtocolKind>,
    threads: usize,
    jobs: usize,
    tick_ns: u64,
    seed: u64,
    /// Output path (measure mode) or baseline path (`--check` mode).
    path: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        check: false,
        kind: None,
        threads: DEFAULT_THREADS,
        jobs: DEFAULT_JOBS,
        tick_ns: DEFAULT_TICK_NS,
        seed: DEFAULT_SEED,
        path: "BENCH_rt.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} takes a value"));
        match a.as_str() {
            "--check" => args.check = true,
            "--kind" => {
                let v = value("--kind");
                args.kind = Some(v.parse().unwrap_or_else(|e| panic!("{e}")));
            }
            "--threads" => args.threads = value("--threads").parse().expect("--threads: integer"),
            "--jobs" => args.jobs = value("--jobs").parse().expect("--jobs: integer"),
            "--tick-ns" => args.tick_ns = value("--tick-ns").parse().expect("--tick-ns: integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            other => args.path = other.to_string(),
        }
    }
    args
}

struct Band {
    priority: u32,
    hist: rt::LatencyHistogram,
}

/// Execute one protocol's run and fold it into a JSON record.
fn measure(set: &TransactionSet, kind: ProtocolKind, args: &Args) -> Json {
    let jobs = rt::job_list(set, args.jobs, args.seed);
    let result = rt::run(
        set,
        &jobs,
        rt::RtConfig::new(kind)
            .with_threads(args.threads)
            .with_tick_ns(args.tick_ns),
    );
    assert_eq!(result.committed, jobs.len() as u64, "runtime dropped jobs");

    // One histogram per distinct base priority, highest first.
    let mut bands: Vec<Band> = Vec::new();
    for job in &result.jobs {
        let level = job.priority.level();
        let band = match bands.iter_mut().find(|b| b.priority == level) {
            Some(b) => b,
            None => {
                bands.push(Band {
                    priority: level,
                    hist: rt::LatencyHistogram::new(),
                });
                bands.last_mut().expect("just pushed")
            }
        };
        band.hist.record(job.latency_ns);
    }
    bands.sort_by_key(|b| std::cmp::Reverse(b.priority));

    let us = |ns: u64| ns as f64 / 1_000.0;
    let band_records: Vec<Json> = bands
        .iter()
        .map(|b| {
            Json::obj()
                .set("priority", b.priority as u64)
                .set("jobs", b.hist.count())
                .set("p50_us", us(b.hist.quantile(0.50)))
                .set("p95_us", us(b.hist.quantile(0.95)))
                .set("p99_us", us(b.hist.quantile(0.99)))
                .set("max_us", us(b.hist.max()))
        })
        .collect();

    let throughput = result.throughput();
    println!(
        "{:<8} {:>7} threads {:>6} jobs {:>12.0} committed/sec {:>8} restarts {:>4} deadlocks",
        kind.name(),
        args.threads,
        args.jobs,
        throughput,
        result.restarts,
        result.deadlocks_resolved,
    );
    for b in &bands {
        println!(
            "  prio {:>3}: {:>4} jobs  p50 {:>9.1}us  p95 {:>9.1}us  p99 {:>9.1}us  max {:>9.1}us",
            b.priority,
            b.hist.count(),
            us(b.hist.quantile(0.50)),
            us(b.hist.quantile(0.95)),
            us(b.hist.quantile(0.99)),
            us(b.hist.max()),
        );
    }

    Json::obj()
        .set("protocol", kind.name())
        .set("threads", args.threads as u64)
        .set("jobs", args.jobs as u64)
        .set("seed", args.seed)
        .set("tick_ns", args.tick_ns)
        .set("elapsed_ms", result.elapsed.as_secs_f64() * 1_000.0)
        .set("committed", result.committed)
        .set("committed_per_sec", throughput)
        .set("restarts", result.restarts)
        .set("deadlocks_resolved", result.deadlocks_resolved)
        .set("bands", Json::Arr(band_records))
}

/// Baseline record matching this run's configuration, if any.
fn baseline_of<'a>(baseline: &'a [Json], rec: &Json) -> Option<&'a Json> {
    baseline.iter().find(|b| {
        ["protocol", "threads", "jobs", "tick_ns"]
            .iter()
            .all(|&k| match (b.get(k), rec.get(k)) {
                (Some(x), Some(y)) => x.to_string_compact() == y.to_string_compact(),
                _ => false,
            })
    })
}

fn main() {
    let args = parse_args();
    let set = rtdb_bench::standard_workload(args.seed);
    let baseline: Option<Vec<Json>> = std::fs::read_to_string(&args.path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|json| json.as_array().map(<[Json]>::to_vec));

    let kinds: Vec<ProtocolKind> = match args.kind {
        Some(k) => vec![k],
        None => ProtocolKind::STANDARD.to_vec(),
    };

    let mut records = Vec::new();
    let mut warnings = Vec::new();
    for &kind in &kinds {
        let rec = measure(&set, kind, &args);
        if let Some(base) = baseline.as_deref().and_then(|b| baseline_of(b, &rec)) {
            let old = base.get("committed_per_sec").and_then(Json::as_f64);
            let new = rec.get("committed_per_sec").and_then(Json::as_f64);
            if let (Some(old), Some(new)) = (old, new) {
                let delta = (new - old) / old * 100.0;
                eprintln!(
                    "{}: {delta:+.1}% vs baseline ({old:.0} -> {new:.0})",
                    kind.name()
                );
                if delta < -100.0 * REGRESSION_TOLERANCE {
                    warnings.push(format!(
                        "{}: {delta:+.1}% (baseline {old:.0}, measured {new:.0})",
                        kind.name()
                    ));
                }
            }
        }
        records.push(rec);
    }

    if !warnings.is_empty() {
        // Advisory only: threaded wall-clock throughput on shared hardware
        // is too noisy for a hard gate, but regressions should be visible.
        eprintln!(
            "WARNING: runtime throughput dropped beyond {:.0}% on:",
            100.0 * REGRESSION_TOLERANCE
        );
        for w in &warnings {
            eprintln!("  {w}");
        }
    }

    if args.check {
        if baseline.is_none() {
            eprintln!("no baseline at {} -- nothing to check against", args.path);
        }
        println!(
            "check done: {} warning(s) (advisory, always exit 0)",
            warnings.len()
        );
    } else {
        std::fs::write(&args.path, Json::Arr(records).pretty()).expect("output path writable");
        println!("written to {}", args.path);
    }
}
