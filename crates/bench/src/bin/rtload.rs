//! Load generator for the threaded runtime: emit `BENCH_rt.json` with
//! closed-loop throughput/latency records and an open-loop saturation
//! curve with per-priority deadline-miss ratios.
//!
//! ```sh
//! cargo run --release -p rtdb-bench --bin rtload                  # full line-up -> ./BENCH_rt.json
//! cargo run --release -p rtdb-bench --bin rtload -- --threads 8 --kind pcp-da --seed 7
//! cargo run --release -p rtdb-bench --bin rtload -- --arrival-rate 50000 --sweep-points 6
//! cargo run --release -p rtdb-bench --bin rtload -- --check       # advisory regression check
//! ```
//!
//! **Closed loop** (`"mode": "closed-loop"` records): a deterministic
//! seeded job queue (`rt::job_list`) is drained by `--threads` workers
//! under each protocol; every job runs to commit (aborts restart it), so
//! `committed == jobs` always and the interesting numbers are wall-clock
//! throughput and the per-priority latency distribution (p50/p95/p99/max
//! over begin→commit, measured on a log-bucketed histogram,
//! `rt::LatencyHistogram`). This measures *service capacity*.
//!
//! **Open loop** (`"mode": "open-loop"` records): arrivals follow a
//! seeded schedule (exponential or periodic interarrivals, per-template
//! rates ∝ 1/period) that does not slow down when the system does; jobs
//! flow through the admission front-end (`rt::run_front`) carrying
//! `deadline = release + period·tick`. Each run of the sweep offers
//! `rate·k/points` jobs/sec for `k = 1..=points` — a monotone
//! offered-load axis — and the record reports per-priority deadline-miss
//! ratios, queueing delay split from service time, and shed/reject
//! counts. `--arrival-rate` sets the sweep top; the default is 1.5× a
//! short closed-loop calibration run (capped by the first-order
//! service-capacity estimate), so the curve always crosses saturation
//! without starting there. This measures behaviour *under offered
//! load* — the regime where queueing collapse lives.
//!
//! `--tick-ns` scales each step's simulated duration to wall-clock
//! busy-work (and, in open-loop mode, the deadline scale); the default
//! keeps a full line-up under a few seconds while still letting blocking
//! shape the tail.
//!
//! `--check [baseline.json]` measures without writing and **warns**
//! (exit 0 — wall-clock throughput of a threaded run on a shared CI box
//! is too noisy to gate merges on) when committed throughput drops more
//! than 25% against a baseline record with the same mode and
//! configuration; mismatched configurations are skipped.

use rtdb::prelude::*;
use rtdb::rt;
use rtdb_bench::loadgen::{service_capacity, Interarrival, OpenLoopParams, OpenLoopReport};
use rtdb_util::Json;

const DEFAULT_THREADS: usize = 4;
const DEFAULT_JOBS: usize = 400;
const DEFAULT_TICK_NS: u64 = 2_000;
const DEFAULT_SEED: u64 = 7;
const DEFAULT_SWEEP_POINTS: usize = 4;
const DEFAULT_QUEUE_CAP: usize = 64;
/// Default sweep top: this multiple of the service-capacity estimate.
const DEFAULT_OVERLOAD: f64 = 1.5;
/// Advisory tolerance: a warning is printed when committed-txns/sec
/// drops by more than this fraction against a same-config baseline.
const REGRESSION_TOLERANCE: f64 = 0.25;

struct Args {
    check: bool,
    /// `None` = the full [`ProtocolKind::STANDARD`] line-up (closed
    /// loop) and the PCP-DA / 2PL-HP pair (open loop).
    kind: Option<ProtocolKind>,
    threads: usize,
    jobs: usize,
    tick_ns: u64,
    seed: u64,
    /// Sweep-top offered rate (jobs/sec); `None` = auto from
    /// [`service_capacity`].
    arrival_rate: Option<f64>,
    sweep_points: usize,
    interarrival: Interarrival,
    policy: rt::AdmissionPolicy,
    queue_cap: usize,
    /// Skip the closed-loop line-up (open-loop sweep only).
    open_only: bool,
    /// Output path (measure mode) or baseline path (`--check` mode).
    path: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        check: false,
        kind: None,
        threads: DEFAULT_THREADS,
        jobs: DEFAULT_JOBS,
        tick_ns: DEFAULT_TICK_NS,
        seed: DEFAULT_SEED,
        arrival_rate: None,
        sweep_points: DEFAULT_SWEEP_POINTS,
        interarrival: Interarrival::Exponential,
        policy: rt::AdmissionPolicy::Reject,
        queue_cap: DEFAULT_QUEUE_CAP,
        open_only: false,
        path: "BENCH_rt.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} takes a value"));
        match a.as_str() {
            "--check" => args.check = true,
            "--open-only" => args.open_only = true,
            "--kind" => {
                let v = value("--kind");
                args.kind = Some(v.parse().unwrap_or_else(|e| panic!("{e}")));
            }
            "--threads" => args.threads = value("--threads").parse().expect("--threads: integer"),
            "--jobs" => args.jobs = value("--jobs").parse().expect("--jobs: integer"),
            "--tick-ns" => args.tick_ns = value("--tick-ns").parse().expect("--tick-ns: integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--arrival-rate" => {
                let rate: f64 = value("--arrival-rate")
                    .parse()
                    .expect("--arrival-rate: jobs/sec");
                assert!(rate > 0.0, "--arrival-rate must be positive");
                args.arrival_rate = Some(rate);
            }
            "--sweep-points" => {
                args.sweep_points = value("--sweep-points")
                    .parse()
                    .expect("--sweep-points: integer");
                assert!(args.sweep_points > 0, "--sweep-points must be positive");
            }
            "--interarrival" => {
                let v = value("--interarrival");
                args.interarrival = v.parse().unwrap_or_else(|e| panic!("{e}"));
            }
            "--policy" => {
                let v = value("--policy");
                args.policy = v.parse().unwrap_or_else(|e| panic!("{e}"));
            }
            "--queue-cap" => {
                args.queue_cap = value("--queue-cap").parse().expect("--queue-cap: integer");
            }
            other => args.path = other.to_string(),
        }
    }
    args
}

struct Band {
    priority: u32,
    hist: rt::LatencyHistogram,
}

/// Per-priority latency histograms over a run's committed jobs.
fn latency_bands(result: &rt::RtResult) -> Vec<Band> {
    let mut bands: Vec<Band> = Vec::new();
    for job in &result.jobs {
        let level = job.priority.level();
        let band = match bands.iter_mut().find(|b| b.priority == level) {
            Some(b) => b,
            None => {
                bands.push(Band {
                    priority: level,
                    hist: rt::LatencyHistogram::new(),
                });
                bands.last_mut().expect("just pushed")
            }
        };
        band.hist.record(job.latency_ns);
    }
    bands.sort_by_key(|b| std::cmp::Reverse(b.priority));
    bands
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Execute one protocol's closed-loop run and fold it into a JSON record.
fn measure(set: &TransactionSet, kind: ProtocolKind, args: &Args) -> Json {
    let jobs = rt::job_list(set, args.jobs, args.seed);
    let result = rt::run(
        set,
        &jobs,
        rt::RtConfig::new(kind)
            .with_threads(args.threads)
            .with_tick_ns(args.tick_ns),
    );
    assert_eq!(result.committed, jobs.len() as u64, "runtime dropped jobs");

    // One histogram per distinct base priority, highest first.
    let bands = latency_bands(&result);
    let band_records: Vec<Json> = bands
        .iter()
        .map(|b| {
            Json::obj()
                .set("priority", b.priority as u64)
                .set("jobs", b.hist.count())
                .set("p50_us", us(b.hist.quantile(0.50)))
                .set("p95_us", us(b.hist.quantile(0.95)))
                .set("p99_us", us(b.hist.quantile(0.99)))
                .set("max_us", us(b.hist.max()))
        })
        .collect();

    let throughput = result.throughput();
    println!(
        "{:<8} {:>7} threads {:>6} jobs {:>12.0} committed/sec {:>8} restarts {:>4} deadlocks",
        kind.name(),
        args.threads,
        args.jobs,
        throughput,
        result.restarts,
        result.deadlocks_resolved,
    );
    for b in &bands {
        println!(
            "  prio {:>3}: {:>4} jobs  p50 {:>9.1}us  p95 {:>9.1}us  p99 {:>9.1}us  max {:>9.1}us",
            b.priority,
            b.hist.count(),
            us(b.hist.quantile(0.50)),
            us(b.hist.quantile(0.95)),
            us(b.hist.quantile(0.99)),
            us(b.hist.max()),
        );
    }

    Json::obj()
        .set("mode", "closed-loop")
        .set("protocol", kind.name())
        .set("threads", args.threads as u64)
        .set("jobs", args.jobs as u64)
        .set("seed", args.seed)
        .set("tick_ns", args.tick_ns)
        .set("elapsed_ms", result.elapsed.as_secs_f64() * 1_000.0)
        .set("committed", result.committed)
        .set("committed_per_sec", throughput)
        .set("restarts", result.restarts)
        .set("deadlocks_resolved", result.deadlocks_resolved)
        .set("bands", Json::Arr(band_records))
}

/// Fold one open-loop sweep point into a JSON record.
fn open_loop_record(report: &OpenLoopReport, point: usize) -> Json {
    let p = &report.params;
    let r = &report.result;
    let band_records: Vec<Json> = r
        .misses_by_priority()
        .iter()
        .map(|b| {
            Json::obj()
                .set("priority", b.priority as u64)
                .set("committed", b.committed)
                .set("missed", b.missed)
                .set("miss_ratio", b.ratio())
        })
        .collect();

    println!(
        "{:<8} open-loop {:>10.0} jobs/sec offered: {:>4} committed {:>4} shed {:>4} rejected  miss {:>6.1}%  queue p95 {:>9.1}us  service p95 {:>9.1}us",
        p.kind.name(),
        p.arrival_rate,
        r.committed,
        r.shed,
        r.rejected,
        100.0 * r.miss_ratio(),
        us(report.queue_hist.quantile(0.95)),
        us(report.service_hist.quantile(0.95)),
    );

    Json::obj()
        .set("mode", "open-loop")
        .set("protocol", p.kind.name())
        .set("threads", p.threads as u64)
        .set("jobs", p.jobs as u64)
        .set("seed", p.seed)
        .set("tick_ns", p.tick_ns)
        .set("point", point as u64)
        .set("arrival_rate", p.arrival_rate)
        .set("interarrival", p.interarrival.to_string())
        .set("policy", p.policy.to_string())
        .set("queue_cap", p.capacity as u64)
        .set("offered", report.offered)
        .set("committed", r.committed)
        .set("shed", r.shed)
        .set("rejected", r.rejected)
        .set("committed_per_sec", r.throughput())
        .set("miss_ratio", r.miss_ratio())
        .set("queue_p50_us", us(report.queue_hist.quantile(0.50)))
        .set("queue_p95_us", us(report.queue_hist.quantile(0.95)))
        .set("queue_p99_us", us(report.queue_hist.quantile(0.99)))
        .set("service_p50_us", us(report.service_hist.quantile(0.50)))
        .set("service_p95_us", us(report.service_hist.quantile(0.95)))
        .set("service_p99_us", us(report.service_hist.quantile(0.99)))
        .set("bands", Json::Arr(band_records))
}

/// Run the saturation sweep for one protocol, lowest offered rate first.
fn measure_open_loop(set: &TransactionSet, kind: ProtocolKind, args: &Args) -> Vec<Json> {
    let top_rate = args.arrival_rate.unwrap_or_else(|| {
        // Calibrate the sweep top against *measured* closed-loop
        // throughput: the first-order `service_capacity` estimate knows
        // nothing about blocking or lock-manager overhead and can sit
        // several times above the real ceiling, which would leave every
        // sweep point saturated. The min guards against a calibration
        // run inflated by scheduler luck.
        let jobs = rt::job_list(set, 200, args.seed);
        let cal = rt::run(
            set,
            &jobs,
            rt::RtConfig::new(kind)
                .with_threads(args.threads)
                .with_tick_ns(args.tick_ns),
        );
        let ceiling = cal
            .throughput()
            .min(service_capacity(set, args.threads, args.tick_ns));
        DEFAULT_OVERLOAD * ceiling
    });
    let base = OpenLoopParams {
        kind,
        threads: args.threads,
        tick_ns: args.tick_ns,
        jobs: args.jobs,
        arrival_rate: top_rate,
        interarrival: args.interarrival,
        policy: args.policy,
        capacity: args.queue_cap,
        seed: args.seed,
    };
    rtdb_bench::loadgen::saturation_sweep(set, &base, args.sweep_points)
        .iter()
        .enumerate()
        .map(|(i, report)| open_loop_record(report, i + 1))
        .collect()
}

/// Baseline record matching this run's mode and configuration, if any.
fn baseline_of<'a>(baseline: &'a [Json], rec: &Json) -> Option<&'a Json> {
    let open_loop = rec.get("mode").and_then(Json::as_str) == Some("open-loop");
    // Open-loop committed/sec tracks the offered rate below saturation,
    // so records only compare when the offered rate matches too —
    // auto-calibrated sweeps (whose top moves with measured capacity)
    // simply skip the check; explicit `--arrival-rate` runs match.
    let keys: &[&str] = if open_loop {
        &[
            "mode",
            "protocol",
            "threads",
            "jobs",
            "tick_ns",
            "point",
            "policy",
            "interarrival",
            "arrival_rate",
        ]
    } else {
        &["mode", "protocol", "threads", "jobs", "tick_ns"]
    };
    baseline.iter().find(|b| {
        keys.iter().all(|&k| match (b.get(k), rec.get(k)) {
            (Some(x), Some(y)) => x.to_string_compact() == y.to_string_compact(),
            _ => false,
        })
    })
}

fn main() {
    let args = parse_args();
    let set = rtdb_bench::standard_workload(args.seed);
    let baseline: Option<Vec<Json>> = std::fs::read_to_string(&args.path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|json| json.as_array().map(<[Json]>::to_vec));

    let closed_kinds: Vec<ProtocolKind> = if args.open_only {
        Vec::new()
    } else {
        match args.kind {
            Some(k) => vec![k],
            None => ProtocolKind::STANDARD.to_vec(),
        }
    };
    // The open-loop sweep defaults to the paper's protocol and the
    // abort-based baseline; a full nine-protocol sweep belongs in
    // figures.rs, not the load generator.
    let open_kinds: Vec<ProtocolKind> = match args.kind {
        Some(k) => vec![k],
        None => vec![ProtocolKind::PcpDa, ProtocolKind::TwoPlHp],
    };

    let mut records = Vec::new();
    for &kind in &closed_kinds {
        records.push(measure(&set, kind, &args));
    }
    for &kind in &open_kinds {
        records.extend(measure_open_loop(&set, kind, &args));
    }

    let mut warnings = Vec::new();
    for rec in &records {
        if let Some(base) = baseline.as_deref().and_then(|b| baseline_of(b, rec)) {
            let old = base.get("committed_per_sec").and_then(Json::as_f64);
            let new = rec.get("committed_per_sec").and_then(Json::as_f64);
            if let (Some(old), Some(new)) = (old, new) {
                let delta = (new - old) / old * 100.0;
                let label = format!(
                    "{} ({}{})",
                    rec.get("protocol").and_then(Json::as_str).unwrap_or("?"),
                    rec.get("mode").and_then(Json::as_str).unwrap_or("?"),
                    rec.get("point")
                        .and_then(Json::as_i64)
                        .map(|p| format!(" p{p}"))
                        .unwrap_or_default(),
                );
                eprintln!("{label}: {delta:+.1}% vs baseline ({old:.0} -> {new:.0})");
                if delta < -100.0 * REGRESSION_TOLERANCE {
                    warnings.push(format!(
                        "{label}: {delta:+.1}% (baseline {old:.0}, measured {new:.0})"
                    ));
                }
            }
        }
    }

    if !warnings.is_empty() {
        // Advisory only: threaded wall-clock throughput on shared hardware
        // is too noisy for a hard gate, but regressions should be visible.
        eprintln!(
            "WARNING: runtime throughput dropped beyond {:.0}% on:",
            100.0 * REGRESSION_TOLERANCE
        );
        for w in &warnings {
            eprintln!("  {w}");
        }
    }

    if args.check {
        if baseline.is_none() {
            eprintln!("no baseline at {} -- nothing to check against", args.path);
        }
        println!(
            "check done: {} warning(s) (advisory, always exit 0)",
            warnings.len()
        );
    } else {
        std::fs::write(&args.path, Json::Arr(records).pretty()).expect("output path writable");
        println!("written to {}", args.path);
    }
}
