//! Load generator for the threaded runtime: emit `BENCH_rt.json` with
//! closed-loop throughput/latency records and an open-loop saturation
//! curve with per-priority deadline-miss ratios.
//!
//! ```sh
//! cargo run --release -p rtdb-bench --bin rtload                  # full line-up -> ./BENCH_rt.json
//! cargo run --release -p rtdb-bench --bin rtload -- --threads 8 --kind pcp-da --seed 7
//! cargo run --release -p rtdb-bench --bin rtload -- --manager combining --threads 1,4,16
//! cargo run --release -p rtdb-bench --bin rtload -- --arrival-rate 50000 --sweep-points 6
//! cargo run --release -p rtdb-bench --bin rtload -- --shards 1,4 --cross-fraction 0.2
//! cargo run --release -p rtdb-bench --bin rtload -- --tenants 2 --fairness both
//! cargo run --release -p rtdb-bench --bin rtload -- --tenants 2 --net --check
//! cargo run --release -p rtdb-bench --bin rtload -- --check       # advisory regression check
//! ```
//!
//! **Closed loop** (`"mode": "closed-loop"` records): a deterministic
//! seeded job queue (`rt::job_list`) is drained by `--threads` workers
//! under each protocol; every job runs to commit (aborts restart it), so
//! `committed == jobs` always and the interesting numbers are wall-clock
//! throughput and the per-priority latency distribution (p50/p95/p99/max
//! over begin→commit, measured on a log-bucketed histogram,
//! `rt::LatencyHistogram`). This measures *service capacity*.
//!
//! **Open loop** (`"mode": "open-loop"` records): arrivals follow a
//! seeded schedule (exponential or periodic interarrivals, per-template
//! rates ∝ 1/period) that does not slow down when the system does; jobs
//! flow through the admission front-end (`rt::run_front`) carrying
//! `deadline = release + period·tick`. Each run of the sweep offers
//! `rate·k/points` jobs/sec for `k = 1..=points` — a monotone
//! offered-load axis — and the record reports per-priority deadline-miss
//! ratios, queueing delay split from service time, and shed/reject
//! counts. `--arrival-rate` sets the sweep top; the default is 1.5× a
//! short closed-loop calibration run (capped by the first-order
//! service-capacity estimate), so the curve always crosses saturation
//! without starting there. This measures behaviour *under offered
//! load* — the regime where queueing collapse lives.
//!
//! **Sweep axes.** `--manager mutex|combining|both` (default `both`)
//! selects the lock manager(s); every record carries a `"manager"`
//! field, and combining records additionally carry a `"combiner"`
//! telemetry object (passes, ops-combined-per-pass, pass-length
//! distribution, per-priority time-in-slot). `--threads` accepts a
//! comma-separated list; the closed loop defaults to the
//! 1/2/4/8/16/32 sweep, the open loop runs at one thread count (the
//! single `--threads` value if one was given, else 4). Both managers
//! run at identical seeds and — in the open loop — identical offered
//! rates (the auto-calibration runs once per protocol, under the mutex
//! manager), so mutex-vs-combining records are directly comparable;
//! after measuring, a warn-only A/B summary prints the combining-vs-
//! mutex throughput delta for every matched pair.
//!
//! `--reps` (default 3) re-runs each closed-loop configuration and keeps
//! the *median-throughput* record: single 400-job runs are ~20 ms
//! windows, and on a shared box one preemption inside such a window
//! swings the measurement by ±20-30%, which would drown the A/B
//! comparison in scheduler noise. The open loop is exempt — its runs are
//! paced in real time, so repetitions multiply wall-clock cost, and its
//! headline numbers (miss ratios over hundreds of jobs) average the
//! noise out internally.
//!
//! `--tick-ns` scales each step's simulated duration to wall-clock
//! busy-work (and, in open-loop mode, the deadline scale); the default
//! keeps a full line-up under a few seconds while still letting blocking
//! shape the tail.
//!
//! **Read-heavy family.** `--read-fraction F` (templates that are pure
//! readers, default 0.95 when the family is selected) and `--skew θ`
//! (Zipfian exponent over the item pool, 0 = uniform) switch the
//! workload to [`rtdb_bench::read_heavy_workload`]; `--snapshot
//! on|off|both` (default `off`) runs with the lock-exempt multiversion
//! snapshot path enabled, disabled, or A/B. Records from these runs
//! carry `"read_fraction"`, `"skew"` and (when on) `"snapshot": true`
//! plus snapshot telemetry (`snapshots`, `lock_transitions`,
//! `mv_high_water`), and baseline matching is read-mix aware: a record
//! only compares against a baseline with the same mix and snapshot
//! setting. The default full line-up additionally appends a read-heavy
//! sweep — PCP-DA, 95/5, θ ∈ {0, 0.6, 0.9}, snapshot off vs on, both
//! managers — and prints a warn-only snapshot-on-vs-off A/B summary.
//!
//! **Zipfian-hotspot family.** `--skew θ` *without* `--read-fraction`
//! switches the workload to [`rtdb_bench::hotspot_workload`] — the
//! write-heavy early-release sweep: long transactions (3–6 data steps,
//! 90% writes, hottest item accessed first) over a Zipf(θ) 16-item
//! pool, the regime where Bamboo and Brook-2PL retire write locks early
//! instead of pinning them across the transaction body — the payoff
//! shows in the latency tail (p99 bands), not committed/sec, on a
//! CPU-bound box. Without `--kind` the closed loop runs the
//! early-release pair plus the blocking / abort-based baselines (PCP-DA,
//! 2PL-HP, Bamboo, Brook-2PL). Records carry `"family": "hotspot"` and
//! `"skew"`, so they never match read-heavy or standard baselines. The
//! default full line-up additionally appends a hotspot sweep — those four
//! kinds at θ ∈ {0, 0.6, 0.9, 1.2}, both managers — and every closed-loop
//! summary line and record now includes the abort-reason breakdown
//! (`wound` / `cascade` / `deadlock_victim` / `ceiling_block`), which is
//! how the cascade cost of early release stays visible next to its
//! throughput win.
//!
//! **Sharded family.** `--shards` (comma-separated, default `1`) sweeps
//! the partitioned lock-manager axis: every listed count runs the
//! closed-loop line-up with the runtime's sharded manager
//! (`RtConfig::with_shards`). A non-trivial sweep switches the workload
//! to [`rtdb_bench::partitioned_workload`] — a partitioned-Zipfian pool
//! whose partition count is the sweep's *maximum* shard count, so every
//! point measures the identical item distribution and only the manager
//! sharding varies; `--cross-fraction F` (default 0.1) sets the
//! probability that a data step leaves its template's home partition.
//! Records carry `"shards"`, `"partitions"` and `"cross_fraction"` tags
//! plus per-shard telemetry (`cross_shard_txns` and a `per_shard` array
//! of ops / commits / state-lock acquisitions / ceiling publishes).
//! Non-shardable protocols are skipped at shard counts above 1 (refused
//! loudly when named with `--kind`). Both loops honour the sweep: the
//! open loop runs once per listed shard count, sharded through
//! `RtConfig::with_shards` and tagged with the same shard axis, so its
//! records never masquerade as unsharded points. A non-trivial sweep
//! cannot combine with the read-heavy family flags.
//!
//! **Multi-tenant overload scenario.** `--tenants N` (or an explicit
//! `--tenant-weights 1,8` list) runs *only* the scenario: N tenants
//! submit the same template mix at offered rates split by weight
//! (default: every tenant at weight 1 except the last at 8), at 2× the
//! measured saturation rate, under `least-slack` admission (override
//! with `--policy`). `--fairness on|off|both` (default `both`) toggles
//! per-tenant token-bucket budgets (`FairnessConfig::for_capacity` — an
//! equal share of the *measured* ceiling, so a high-rate tenant really
//! can run out of budget); both
//! settings replay the *identical* arrival schedule, so the low-rate
//! tenant's fail ratio — (missed + shed + rejected) / offered, the
//! headline metric, since a shed job misses its deadline by definition —
//! is directly comparable, and a warn-only A/B summary prints it
//! fairness-on vs fairness-off. Each fairness setting runs `--reps`
//! times and keeps the run with the median headline metric (the same
//! noise treatment as the closed loop). Scenario records carry `"scenario":
//! "multi-tenant-overload"`, `"fairness"`, `"tenant_weights"`, a
//! per-tenant `"tenants"` array and per-priority `"shed_by_priority"`
//! counts (via `RtResult::shed_by_txn` mapped through the set's
//! priorities). The default full line-up appends the scenario
//! (in-process, PCP-DA, fairness off vs on) after the open-loop sweeps.
//!
//! **`--net`.** Routes every open-loop run — sweeps and scenario —
//! through the loopback TCP edge ([`rtdb::net::serve`]): one socket
//! client per tenant submits the schedule over the wire protocol, and
//! the records gain a `"net": true` tag so they only compare against
//! networked baselines. The closed loop is unaffected.
//!
//! `--check [baseline.json]` measures without writing and **warns**
//! (exit 0 — wall-clock throughput of a threaded run on a shared CI box
//! is too noisy to gate merges on) when committed throughput drops more
//! than 25% against a baseline record with the same mode, manager and
//! configuration; mismatched configurations are skipped.

use rtdb::prelude::*;
use rtdb::rt;
use rtdb_bench::loadgen::{service_capacity, Interarrival, OpenLoopParams, OpenLoopReport};
use rtdb_util::Json;

const DEFAULT_THREADS: usize = 4;
const DEFAULT_THREAD_SWEEP: [usize; 6] = [1, 2, 4, 8, 16, 32];
/// Sized so a closed-loop run spans many scheduler quanta (~100 ms at
/// line rate): a 400-job run is a ~20 ms window — about two CFS
/// timeslices — and one preemption inside it moves the measurement by
/// double-digit percents.
const DEFAULT_JOBS: usize = 2_000;
/// Closed-loop repetitions per configuration; the median-throughput
/// record is kept (see the module docs on scheduler noise).
const DEFAULT_REPS: usize = 3;
const DEFAULT_TICK_NS: u64 = 2_000;
const DEFAULT_SEED: u64 = 7;
const DEFAULT_SWEEP_POINTS: usize = 4;
const DEFAULT_QUEUE_CAP: usize = 64;
/// Scenario default admission-queue bound: shallow enough that the
/// head-of-queue wait stays on the deadline scale — behind a 64-deep
/// queue *every* admitted job misses and shedding policy is moot.
const SCENARIO_QUEUE_CAP: usize = 8;
/// Scenario deadline laxity: deadlines sit at this multiple of the
/// periodic convention (`release + period·tick·scale`). At scale 1 the
/// contention-limited service time alone busts most deadlines and every
/// committed job misses — shedding policy becomes unobservable in the
/// miss numbers.
const SCENARIO_DEADLINE_SCALE: u64 = 4;
/// Default sweep top: this multiple of the service-capacity estimate.
const DEFAULT_OVERLOAD: f64 = 1.5;
/// Offered rate of the multi-tenant overload scenario: 2× measured
/// saturation, so shedding is guaranteed and fairness has work to do.
const SCENARIO_OVERLOAD: f64 = 2.0;
/// Advisory tolerance: a warning is printed when committed-txns/sec
/// drops by more than this fraction against a same-config baseline (or,
/// in the A/B summary, when combining lags mutex by more than this).
const REGRESSION_TOLERANCE: f64 = 0.25;

struct Args {
    check: bool,
    /// `None` = the full [`ProtocolKind::STANDARD`] line-up (closed
    /// loop) and the PCP-DA / 2PL-HP pair (open loop).
    kind: Option<ProtocolKind>,
    /// Lock managers to measure (default: both).
    managers: Vec<rt::ManagerKind>,
    /// Thread counts; `None` = the default closed-loop sweep.
    threads: Option<Vec<usize>>,
    jobs: usize,
    /// Closed-loop repetitions; the median-throughput record survives.
    reps: usize,
    tick_ns: u64,
    seed: u64,
    /// Sweep-top offered rate (jobs/sec); `None` = auto from
    /// [`service_capacity`].
    arrival_rate: Option<f64>,
    sweep_points: usize,
    interarrival: Interarrival,
    /// `None` = the mode's default: `reject` for the saturation sweeps,
    /// `least-slack` for the multi-tenant overload scenario.
    policy: Option<rt::AdmissionPolicy>,
    /// `None` = the mode's default: [`DEFAULT_QUEUE_CAP`] for the
    /// sweeps, the shallow [`SCENARIO_QUEUE_CAP`] for the scenario
    /// (queueing delay must stay on the deadline scale for slack-aware
    /// shedding to save anything).
    queue_cap: Option<usize>,
    /// Skip the closed-loop line-up (open-loop sweep only).
    open_only: bool,
    /// Fraction of templates that are pure readers; selects the
    /// read-heavy workload family.
    read_fraction: Option<f64>,
    /// Zipfian exponent over the item pool; selects the read-heavy
    /// workload family.
    skew: Option<f64>,
    /// Snapshot-path settings to run (`[false]`, `[true]`, or both).
    snapshots: Vec<bool>,
    /// Shard counts for the closed-loop sharded-manager sweep.
    shards: Vec<usize>,
    /// Cross-partition probability of the partitioned workload family.
    cross_fraction: f64,
    /// Route open-loop runs through the loopback TCP edge.
    net: bool,
    /// Tenant count for the multi-tenant overload scenario; selecting it
    /// (or `tenant_weights`) runs *only* the scenario.
    tenants: Option<usize>,
    /// Explicit per-tenant rate weights (overrides the `--tenants`
    /// default of every tenant at 1 with the last at 8).
    tenant_weights: Option<Vec<u64>>,
    /// Fairness settings the scenario runs (`[false]`, `[true]`, or the
    /// A/B default `[false, true]`).
    fairness_modes: Vec<bool>,
    /// Output path (measure mode) or baseline path (`--check` mode).
    path: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        check: false,
        kind: None,
        managers: rt::ManagerKind::ALL.to_vec(),
        threads: None,
        jobs: DEFAULT_JOBS,
        reps: DEFAULT_REPS,
        tick_ns: DEFAULT_TICK_NS,
        seed: DEFAULT_SEED,
        arrival_rate: None,
        sweep_points: DEFAULT_SWEEP_POINTS,
        interarrival: Interarrival::Exponential,
        policy: None,
        queue_cap: None,
        open_only: false,
        read_fraction: None,
        skew: None,
        snapshots: vec![false],
        shards: vec![1],
        cross_fraction: 0.1,
        net: false,
        tenants: None,
        tenant_weights: None,
        fairness_modes: vec![false, true],
        path: "BENCH_rt.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} takes a value"));
        match a.as_str() {
            "--check" => args.check = true,
            "--open-only" => args.open_only = true,
            "--kind" => {
                let v = value("--kind");
                args.kind = Some(v.parse().unwrap_or_else(|e| panic!("{e}")));
            }
            "--manager" => {
                let v = value("--manager");
                args.managers = match v.to_ascii_lowercase().as_str() {
                    "both" | "all" => rt::ManagerKind::ALL.to_vec(),
                    one => vec![one.parse().unwrap_or_else(|e| panic!("{e}"))],
                };
            }
            "--threads" => {
                let v = value("--threads");
                let list: Vec<usize> = v
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads: integer list"))
                    .collect();
                assert!(!list.is_empty(), "--threads needs at least one value");
                args.threads = Some(list);
            }
            "--jobs" => args.jobs = value("--jobs").parse().expect("--jobs: integer"),
            "--reps" => {
                args.reps = value("--reps").parse().expect("--reps: integer");
                assert!(args.reps > 0, "--reps must be positive");
            }
            "--tick-ns" => args.tick_ns = value("--tick-ns").parse().expect("--tick-ns: integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--arrival-rate" => {
                let rate: f64 = value("--arrival-rate")
                    .parse()
                    .expect("--arrival-rate: jobs/sec");
                assert!(rate > 0.0, "--arrival-rate must be positive");
                args.arrival_rate = Some(rate);
            }
            "--sweep-points" => {
                args.sweep_points = value("--sweep-points")
                    .parse()
                    .expect("--sweep-points: integer");
                assert!(args.sweep_points > 0, "--sweep-points must be positive");
            }
            "--interarrival" => {
                let v = value("--interarrival");
                args.interarrival = v.parse().unwrap_or_else(|e| panic!("{e}"));
            }
            "--policy" => {
                let v = value("--policy");
                args.policy = Some(v.parse().unwrap_or_else(|e| panic!("{e}")));
            }
            "--queue-cap" => {
                args.queue_cap = Some(value("--queue-cap").parse().expect("--queue-cap: integer"));
            }
            "--read-fraction" => {
                let f: f64 = value("--read-fraction")
                    .parse()
                    .expect("--read-fraction: fraction in [0, 1]");
                assert!(
                    (0.0..=1.0).contains(&f),
                    "--read-fraction must be in [0, 1]"
                );
                args.read_fraction = Some(f);
            }
            "--skew" => {
                let theta: f64 = value("--skew").parse().expect("--skew: Zipf exponent");
                assert!(
                    theta.is_finite() && theta >= 0.0,
                    "--skew must be a finite non-negative exponent"
                );
                args.skew = Some(theta);
            }
            "--shards" => {
                let v = value("--shards");
                let list: Vec<usize> = v
                    .split(',')
                    .map(|t| t.trim().parse().expect("--shards: integer list"))
                    .collect();
                assert!(!list.is_empty(), "--shards needs at least one value");
                assert!(
                    list.iter().all(|&s| (1..=64).contains(&s)),
                    "--shards values must be in 1..=64"
                );
                args.shards = list;
            }
            "--cross-fraction" => {
                let f: f64 = value("--cross-fraction")
                    .parse()
                    .expect("--cross-fraction: fraction in [0, 1]");
                assert!(
                    (0.0..=1.0).contains(&f),
                    "--cross-fraction must be in [0, 1]"
                );
                args.cross_fraction = f;
            }
            "--net" => args.net = true,
            "--tenants" => {
                let n: usize = value("--tenants").parse().expect("--tenants: integer");
                assert!(
                    (2..=64).contains(&n),
                    "--tenants must be in 2..=64 (one tenant is the legacy single stream)"
                );
                args.tenants = Some(n);
            }
            "--tenant-weights" => {
                let v = value("--tenant-weights");
                let list: Vec<u64> = v
                    .split(',')
                    .map(|t| t.trim().parse().expect("--tenant-weights: integer list"))
                    .collect();
                assert!(
                    list.len() >= 2,
                    "--tenant-weights needs at least two tenants"
                );
                assert!(
                    list.iter().all(|&w| w > 0),
                    "--tenant-weights must be positive"
                );
                args.tenant_weights = Some(list);
            }
            "--fairness" => {
                let v = value("--fairness");
                args.fairness_modes = match v.to_ascii_lowercase().as_str() {
                    "on" | "true" => vec![true],
                    "off" | "false" => vec![false],
                    "both" | "ab" => vec![false, true],
                    other => panic!("--fairness: expected on, off or both, got `{other}`"),
                };
            }
            "--snapshot" => {
                let v = value("--snapshot");
                args.snapshots = match v.to_ascii_lowercase().as_str() {
                    "on" | "true" => vec![true],
                    "off" | "false" => vec![false],
                    "both" | "ab" => vec![false, true],
                    other => panic!("--snapshot: expected on, off or both, got `{other}`"),
                };
            }
            other => args.path = other.to_string(),
        }
    }
    args
}

/// Workload-mix tags carried on every record of a run, so baseline
/// matching is read-mix aware: `family` is `Some((read_fraction, skew))`
/// for the read-heavy workload family, and `snapshot` marks runs with
/// the lock-exempt snapshot path on. Absent tags mean the standard
/// workload / path off — old baselines without the keys keep matching.
#[derive(Clone, Copy)]
struct Mix {
    family: Option<(f64, f64)>,
    /// `Some(theta)` for the write-heavy Zipfian-hotspot family
    /// ([`rtdb_bench::hotspot_workload`]); records carry `"family":
    /// "hotspot"` plus the skew tag so they never match read-heavy or
    /// standard baselines.
    hotspot: Option<f64>,
    snapshot: bool,
    /// `Some((shards, partitions, cross_fraction))` for the sharded
    /// sweep: the manager's shard count, the workload's partition count
    /// (the sweep maximum, fixed across points) and the cross-partition
    /// probability. `None` for legacy unsharded runs, whose records stay
    /// untagged so old baselines keep matching.
    shard_axis: Option<(usize, usize, f64)>,
}

impl Mix {
    fn unsharded(family: Option<(f64, f64)>, snapshot: bool) -> Self {
        Mix {
            family,
            hotspot: None,
            snapshot,
            shard_axis: None,
        }
    }

    fn hotspot(theta: f64) -> Self {
        Mix {
            family: None,
            hotspot: Some(theta),
            snapshot: false,
            shard_axis: None,
        }
    }

    fn shards(self) -> usize {
        self.shard_axis.map_or(1, |(s, _, _)| s)
    }

    fn tag(self, mut rec: Json) -> Json {
        if let Some((read_fraction, skew)) = self.family {
            rec = rec.set("read_fraction", read_fraction).set("skew", skew);
        }
        if let Some(theta) = self.hotspot {
            rec = rec.set("family", "hotspot").set("skew", theta);
        }
        if self.snapshot {
            rec = rec.set("snapshot", true);
        }
        if let Some((shards, partitions, cross)) = self.shard_axis {
            rec = rec
                .set("shards", shards as u64)
                .set("partitions", partitions as u64)
                .set("cross_fraction", cross);
        }
        rec
    }
}

struct Band {
    priority: u32,
    hist: rt::LatencyHistogram,
}

/// Per-priority latency histograms over a run's committed jobs.
fn latency_bands(result: &rt::RtResult) -> Vec<Band> {
    let mut bands: Vec<Band> = Vec::new();
    for job in &result.jobs {
        let level = job.priority.level();
        let band = match bands.iter_mut().find(|b| b.priority == level) {
            Some(b) => b,
            None => {
                bands.push(Band {
                    priority: level,
                    hist: rt::LatencyHistogram::new(),
                });
                bands.last_mut().expect("just pushed")
            }
        };
        band.hist.record(job.latency_ns);
    }
    bands.sort_by_key(|b| std::cmp::Reverse(b.priority));
    bands
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// The abort-reason breakdown as a JSON object, plus the compact
/// `[wound N cascade N ...]` suffix the summary lines print (empty when
/// the run never aborted anything).
fn abort_reason_record(r: &AbortBreakdown) -> Json {
    Json::obj()
        .set("ceiling_block", r.ceiling_block)
        .set("deadlock_victim", r.deadlock_victim)
        .set("wound", r.wound)
        .set("cascade", r.cascade)
}

fn abort_reason_suffix(r: &AbortBreakdown) -> String {
    if r.total() == 0 {
        return String::new();
    }
    let mut parts = Vec::new();
    for (label, count) in [
        ("wound", r.wound),
        ("cascade", r.cascade),
        ("deadlock", r.deadlock_victim),
        ("ceiling", r.ceiling_block),
    ] {
        if count > 0 {
            parts.push(format!("{label} {count}"));
        }
    }
    format!(" [{}]", parts.join(", "))
}

/// Fold a combining run's pass/slot telemetry into a JSON object.
fn combiner_record(c: &rt::CombinerStats) -> Json {
    let overall = c.slot_wait_overall();
    let prio_records: Vec<Json> = c
        .slot_wait_by_priority
        .iter()
        .map(|(level, h)| {
            Json::obj()
                .set("priority", *level as u64)
                .set("ops", h.count())
                .set("p50_us", us(h.quantile(0.50)))
                .set("p95_us", us(h.quantile(0.95)))
                .set("p99_us", us(h.quantile(0.99)))
                .set("max_us", us(h.max()))
        })
        .collect();
    Json::obj()
        .set("passes", c.passes)
        .set("ops_combined", c.ops_combined)
        .set("ops_per_pass", c.ops_per_pass())
        .set("max_pass_len", c.max_pass_len)
        .set("pass_len_p50", c.pass_len.quantile(0.50))
        .set("pass_len_p99", c.pass_len.quantile(0.99))
        .set("slot_wait_p50_us", us(overall.quantile(0.50)))
        .set("slot_wait_p95_us", us(overall.quantile(0.95)))
        .set("slot_wait_p99_us", us(overall.quantile(0.99)))
        .set("slot_wait_max_us", us(overall.max()))
        .set("slot_wait_by_priority", Json::Arr(prio_records))
}

/// Execute one protocol's closed-loop configuration `args.reps` times
/// and keep the median-throughput record (tagged with `"reps"`). Every
/// repetition runs the identical seeded job list; only the OS scheduler
/// varies between them.
fn measure(
    set: &TransactionSet,
    kind: ProtocolKind,
    manager: rt::ManagerKind,
    threads: usize,
    mix: Mix,
    args: &Args,
) -> Json {
    let mut runs: Vec<(f64, Json)> = (0..args.reps)
        .map(|_| {
            let rec = measure_once(set, kind, manager, threads, mix, args);
            let tps = rec
                .get("committed_per_sec")
                .and_then(Json::as_f64)
                .expect("closed-loop record carries committed_per_sec");
            (tps, rec)
        })
        .collect();
    runs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (_, median) = runs.swap_remove(runs.len() / 2);
    median.set("reps", args.reps as u64)
}

/// One closed-loop run folded into a JSON record.
fn measure_once(
    set: &TransactionSet,
    kind: ProtocolKind,
    manager: rt::ManagerKind,
    threads: usize,
    mix: Mix,
    args: &Args,
) -> Json {
    let jobs = rt::job_list(set, args.jobs, args.seed);
    let result = rt::run(
        set,
        &jobs,
        rt::RtConfig::new(kind)
            .with_threads(threads)
            .with_tick_ns(args.tick_ns)
            .with_manager(manager)
            .with_snapshot_reads(mix.snapshot)
            .with_shards(mix.shards()),
    );
    assert_eq!(result.committed, jobs.len() as u64, "runtime dropped jobs");

    // One histogram per distinct base priority, highest first.
    let bands = latency_bands(&result);
    let band_records: Vec<Json> = bands
        .iter()
        .map(|b| {
            Json::obj()
                .set("priority", b.priority as u64)
                .set("jobs", b.hist.count())
                .set("p50_us", us(b.hist.quantile(0.50)))
                .set("p95_us", us(b.hist.quantile(0.95)))
                .set("p99_us", us(b.hist.quantile(0.99)))
                .set("max_us", us(b.hist.max()))
        })
        .collect();

    let throughput = result.throughput();
    println!(
        "{:<8} {:<9} {:>3} threads {:>6} jobs {:>12.0} committed/sec {:>8} restarts {:>4} deadlocks{}",
        kind.name(),
        manager.name(),
        threads,
        args.jobs,
        throughput,
        result.restarts,
        result.deadlocks_resolved,
        abort_reason_suffix(&result.abort_reasons),
    );
    for b in &bands {
        println!(
            "  prio {:>3}: {:>4} jobs  p50 {:>9.1}us  p95 {:>9.1}us  p99 {:>9.1}us  max {:>9.1}us",
            b.priority,
            b.hist.count(),
            us(b.hist.quantile(0.50)),
            us(b.hist.quantile(0.95)),
            us(b.hist.quantile(0.99)),
            us(b.hist.max()),
        );
    }

    let mut rec = Json::obj()
        .set("mode", "closed-loop")
        .set("protocol", kind.name())
        .set("manager", manager.name())
        .set("threads", threads as u64)
        .set("jobs", args.jobs as u64)
        .set("seed", args.seed)
        .set("tick_ns", args.tick_ns)
        .set("elapsed_ms", result.elapsed.as_secs_f64() * 1_000.0)
        .set("committed", result.committed)
        .set("committed_per_sec", throughput)
        .set("restarts", result.restarts)
        .set("abort_reasons", abort_reason_record(&result.abort_reasons))
        .set("deadlocks_resolved", result.deadlocks_resolved)
        .set("park_timeout_wakeups", result.park_timeout_wakeups)
        .set("bands", Json::Arr(band_records));
    if manager == rt::ManagerKind::Combining {
        rec = rec.set("combiner", combiner_record(&result.combiner));
    }
    if result.snapshot_reads {
        rec = rec
            .set("snapshots", result.snapshots)
            .set("lock_transitions", result.lock_transitions)
            .set("mv_high_water", result.mv_high_water as u64);
    }
    if result.shards > 1 {
        let shard_records: Vec<Json> = result
            .per_shard
            .iter()
            .map(|s| {
                Json::obj()
                    .set("shard", s.shard as u64)
                    .set("ops", s.ops)
                    .set("commits", s.commits)
                    .set("state_lock_acquires", s.state_lock_acquires)
                    .set("ceiling_publishes", s.ceiling_publishes)
            })
            .collect();
        rec = rec
            .set("cross_shard_txns", result.cross_shard_txns)
            .set("per_shard", Json::Arr(shard_records));
    }
    mix.tag(rec)
}

/// One open-loop run, either in-process or through the loopback TCP
/// edge — same schedule, same report shape, selected by `--net`.
fn run_open(set: &TransactionSet, p: &OpenLoopParams, net: bool) -> OpenLoopReport {
    if net {
        rtdb_bench::netload::run_net_open_loop(set, p).expect("networked open-loop run")
    } else {
        rtdb_bench::loadgen::run_open_loop(set, p)
    }
}

/// Fold one open-loop sweep point into a JSON record.
fn open_loop_record(report: &OpenLoopReport, point: usize, mix: Mix, net: bool) -> Json {
    let p = &report.params;
    let r = &report.result;
    let band_records: Vec<Json> = r
        .misses_by_priority()
        .iter()
        .map(|b| {
            Json::obj()
                .set("priority", b.priority as u64)
                .set("committed", b.committed)
                .set("missed", b.missed)
                .set("miss_ratio", b.ratio())
        })
        .collect();

    println!(
        "{:<8} {:<9} open-loop {:>10.0} jobs/sec offered: {:>4} committed {:>4} shed {:>4} rejected  miss {:>6.1}%  queue p95 {:>9.1}us  service p95 {:>9.1}us",
        p.kind.name(),
        p.manager.name(),
        p.arrival_rate,
        r.committed,
        r.shed,
        r.rejected,
        100.0 * r.miss_ratio(),
        us(report.queue_hist.quantile(0.95)),
        us(report.service_hist.quantile(0.95)),
    );

    let mut rec = Json::obj()
        .set("mode", "open-loop")
        .set("protocol", p.kind.name())
        .set("manager", p.manager.name())
        .set("threads", p.threads as u64)
        .set("jobs", p.jobs as u64)
        .set("seed", p.seed)
        .set("tick_ns", p.tick_ns)
        .set("point", point as u64)
        .set("arrival_rate", p.arrival_rate)
        .set("interarrival", p.interarrival.to_string())
        .set("policy", p.policy.to_string())
        .set("queue_cap", p.capacity as u64)
        .set("offered", report.offered)
        .set("committed", r.committed)
        .set("shed", r.shed)
        .set("rejected", r.rejected)
        .set("committed_per_sec", r.throughput())
        .set("miss_ratio", r.miss_ratio())
        .set("abort_reasons", abort_reason_record(&r.abort_reasons))
        .set("park_timeout_wakeups", r.park_timeout_wakeups)
        .set("queue_p50_us", us(report.queue_hist.quantile(0.50)))
        .set("queue_p95_us", us(report.queue_hist.quantile(0.95)))
        .set("queue_p99_us", us(report.queue_hist.quantile(0.99)))
        .set("service_p50_us", us(report.service_hist.quantile(0.50)))
        .set("service_p95_us", us(report.service_hist.quantile(0.95)))
        .set("service_p99_us", us(report.service_hist.quantile(0.99)))
        .set("bands", Json::Arr(band_records));
    if net {
        rec = rec.set("net", true);
    }
    if p.deadline_scale > 1 {
        rec = rec.set("deadline_scale", p.deadline_scale);
    }
    if p.manager == rt::ManagerKind::Combining {
        rec = rec.set("combiner", combiner_record(&r.combiner));
    }
    if r.snapshot_reads {
        rec = rec
            .set("snapshots", r.snapshots)
            .set("lock_transitions", r.lock_transitions)
            .set("mv_high_water", r.mv_high_water as u64);
    }
    mix.tag(rec)
}

/// Measured saturation rate for one protocol: a short closed-loop
/// calibration run, capped by the first-order [`service_capacity`]
/// estimate. The estimate alone knows nothing about blocking or
/// lock-manager overhead and can sit several times above the real
/// ceiling, which would leave every sweep point saturated; the min
/// guards against a calibration run inflated by scheduler luck.
/// Calibration runs under the mutex manager (the oracle), so both
/// managers sweep at the *same* rates and their records compare like
/// for like.
fn calibrated_ceiling(
    set: &TransactionSet,
    kind: ProtocolKind,
    threads: usize,
    args: &Args,
) -> f64 {
    let jobs = rt::job_list(set, 200, args.seed);
    let cal = rt::run(
        set,
        &jobs,
        rt::RtConfig::new(kind)
            .with_threads(threads)
            .with_tick_ns(args.tick_ns),
    );
    cal.throughput()
        .min(service_capacity(set, threads, args.tick_ns))
}

/// Sweep-top offered rate for one protocol: the explicit `--arrival-rate`
/// if given, else 1.5× the measured saturation rate.
fn top_rate(set: &TransactionSet, kind: ProtocolKind, threads: usize, args: &Args) -> f64 {
    args.arrival_rate
        .unwrap_or_else(|| DEFAULT_OVERLOAD * calibrated_ceiling(set, kind, threads, args))
}

/// Run the saturation sweep for one protocol, lowest offered rate first.
fn measure_open_loop(
    set: &TransactionSet,
    kind: ProtocolKind,
    manager: rt::ManagerKind,
    threads: usize,
    rate: f64,
    mix: Mix,
    args: &Args,
) -> Vec<Json> {
    let base = OpenLoopParams {
        kind,
        manager,
        threads,
        tick_ns: args.tick_ns,
        jobs: args.jobs,
        arrival_rate: rate,
        interarrival: args.interarrival,
        policy: args.policy.unwrap_or(rt::AdmissionPolicy::Reject),
        capacity: args.queue_cap.unwrap_or(DEFAULT_QUEUE_CAP),
        snapshot: mix.snapshot,
        shards: mix.shards(),
        tenant_weights: Vec::new(),
        fairness: None,
        deadline_scale: 1,
        seed: args.seed,
    };
    (1..=args.sweep_points)
        .map(|k| {
            let mut p = base.clone();
            p.arrival_rate = rate * k as f64 / args.sweep_points as f64;
            let report = run_open(set, &p, args.net);
            open_loop_record(&report, k, mix, args.net)
        })
        .collect()
}

/// The multi-tenant overload scenario: tenants split the offered rate by
/// weight, 2× the measured saturation rate, slack-aware shedding —
/// fairness off and on replay the *identical* schedule, so the records
/// are an A/B on the budget mechanism alone.
fn measure_scenario(
    set: &TransactionSet,
    kind: ProtocolKind,
    manager: rt::ManagerKind,
    threads: usize,
    weights: &[u64],
    args: &Args,
) -> Vec<Json> {
    let ceiling = args.arrival_rate.map_or_else(
        || calibrated_ceiling(set, kind, threads, args),
        |r| r / SCENARIO_OVERLOAD,
    );
    let rate = SCENARIO_OVERLOAD * ceiling;
    // Budget the *measured* ceiling, not the raw thread capacity: under
    // contention the real ceiling sits far below `threads` seconds of
    // service per second, and a budget no tenant can exhaust enforces
    // nothing. Three further corrections matter at benchmark scale:
    //
    // * the per-job cost is weighted by arrival share (∝ 1/period,
    //   matching the schedule), not the unweighted template mean;
    // * the ceiling is a closed-loop number — an open-loop run under
    //   shedding and blocking delivers roughly half of it, and since
    //   queued sheds are refunded, a tenant's *net* spend is its commit
    //   flow; the equal share is therefore halved so a hogging tenant's
    //   commit flow really can exceed it;
    // * the burst is one queue's worth of mean-cost jobs — enough to
    //   forgive the light tenant's Poisson clumps, small enough that the
    //   heavy tenant's sustained overdraft blows through it early in the
    //   run (a default quarter-second burst would mask every debt).
    let arrival_weights: Vec<f64> = set
        .templates()
        .iter()
        .map(|t| 1.0 / t.period.raw() as f64)
        .collect();
    let wsum: f64 = arrival_weights.iter().sum();
    let arrival_cost_ns: f64 = set
        .templates()
        .iter()
        .zip(&arrival_weights)
        .map(|(t, w)| w / wsum * t.wcet().raw() as f64 * args.tick_ns as f64)
        .sum();
    let cap = args.queue_cap.unwrap_or(SCENARIO_QUEUE_CAP);
    let budget = rt::FairnessConfig {
        refill_per_sec: rt::FairnessConfig::for_capacity(
            ceiling / 2.0,
            arrival_cost_ns,
            weights.len(),
        )
        .refill_per_sec,
        burst_ns: ((cap as f64 * arrival_cost_ns) as u64).max(1),
    };
    args.fairness_modes
        .iter()
        .map(|&fairness| {
            let p = OpenLoopParams {
                kind,
                manager,
                threads,
                tick_ns: args.tick_ns,
                jobs: args.jobs,
                arrival_rate: rate,
                interarrival: args.interarrival,
                policy: args.policy.unwrap_or(rt::AdmissionPolicy::LeastSlack),
                capacity: args.queue_cap.unwrap_or(SCENARIO_QUEUE_CAP),
                snapshot: false,
                shards: 1,
                tenant_weights: weights.to_vec(),
                fairness: fairness.then_some(budget),
                deadline_scale: SCENARIO_DEADLINE_SCALE,
                seed: args.seed,
            };
            // The same median-of-reps treatment as the closed loop, keyed
            // on the headline metric: a single threaded run's fail ratios
            // swing several points with scheduler noise.
            let mut runs: Vec<(f64, OpenLoopReport)> = (0..args.reps)
                .map(|_| {
                    let report = run_open(set, &p, args.net);
                    (low_rate_fail_ratio(&report, weights), report)
                })
                .collect();
            runs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (_, median) = runs.swap_remove(runs.len() / 2);
            scenario_record(set, &median, fairness, args.net).set("reps", args.reps as u64)
        })
        .collect()
}

/// The scenario's headline metric for one run: the low-rate tenant's
/// fail ratio (lowest weight, ties toward the lowest tenant index).
fn low_rate_fail_ratio(report: &OpenLoopReport, weights: &[u64]) -> f64 {
    let low = weights
        .iter()
        .enumerate()
        .min_by_key(|&(i, &w)| (w, i))
        .map(|(i, _)| i)
        .expect("scenario has at least one tenant");
    report
        .result
        .tenants
        .iter()
        .find(|r| r.tenant as usize == low)
        .map_or(0.0, |r| r.fail_ratio())
}

/// Fold one scenario run into a JSON record: the open-loop base plus the
/// scenario tags, per-tenant rows and per-priority shed counts.
fn scenario_record(
    set: &TransactionSet,
    report: &OpenLoopReport,
    fairness: bool,
    net: bool,
) -> Json {
    let p = &report.params;
    let r = &report.result;
    println!(
        "scenario multi-tenant-overload: fairness {}{}",
        if fairness { "on" } else { "off" },
        if net { ", via TCP edge" } else { "" },
    );
    let base = open_loop_record(report, 0, Mix::unsharded(None, false), net);
    let tenant_rows: Vec<Json> = r
        .tenants
        .iter()
        .map(|t| {
            let weight = p.tenant_weights.get(t.tenant as usize).copied().unwrap_or(1);
            println!(
                "  tenant {} (weight {}): {:>4} offered {:>4} committed {:>4} shed {:>4} rejected {:>4} missed  fail {:>5.1}%",
                t.tenant,
                weight,
                t.offered(),
                t.committed,
                t.shed,
                t.rejected,
                t.missed,
                100.0 * t.fail_ratio(),
            );
            Json::obj()
                .set("tenant", t.tenant as u64)
                .set("weight", weight)
                .set("offered", t.offered())
                .set("committed", t.committed)
                .set("missed", t.missed)
                .set("shed", t.shed)
                .set("rejected", t.rejected)
                .set("miss_ratio", t.miss_ratio())
                .set("fail_ratio", t.fail_ratio())
        })
        .collect();
    // Per-priority shed counts: the queue's per-template telemetry
    // folded through the set's base priorities, highest first.
    let mut shed_bands: Vec<(u32, u64)> = Vec::new();
    for (txn, &count) in r.shed_by_txn.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let level = set.priority_of(TxnId(txn as u32)).level();
        match shed_bands.iter_mut().find(|(l, _)| *l == level) {
            Some((_, c)) => *c += count,
            None => shed_bands.push((level, count)),
        }
    }
    shed_bands.sort_by_key(|&(l, _)| std::cmp::Reverse(l));
    let shed_records: Vec<Json> = shed_bands
        .iter()
        .map(|&(level, count)| Json::obj().set("priority", level as u64).set("shed", count))
        .collect();
    let weight_list: Vec<Json> = p.tenant_weights.iter().map(|&w| Json::from(w)).collect();
    base.set("scenario", "multi-tenant-overload")
        .set("fairness", fairness)
        .set("tenant_weights", Json::Arr(weight_list))
        .set("tenants", Json::Arr(tenant_rows))
        .set("shed_by_priority", Json::Arr(shed_records))
}

/// The identity keys two records must share to be comparable: everything
/// that parameterizes a run except the lock manager.
fn config_keys(rec: &Json) -> &'static [&'static str] {
    // Open-loop committed/sec tracks the offered rate below saturation,
    // so records only compare when the offered rate matches too —
    // auto-calibrated sweeps (whose top moves with measured capacity)
    // simply skip the check; explicit `--arrival-rate` runs match.
    if rec.get("mode").and_then(Json::as_str) == Some("open-loop") {
        &[
            "mode",
            "protocol",
            "threads",
            "jobs",
            "tick_ns",
            "point",
            "policy",
            "interarrival",
            "arrival_rate",
            "family",
            "read_fraction",
            "skew",
            "snapshot",
            "shards",
            "partitions",
            "cross_fraction",
            "net",
            "scenario",
            "fairness",
            "tenant_weights",
            "deadline_scale",
        ]
    } else {
        &[
            "mode",
            "protocol",
            "threads",
            "jobs",
            "tick_ns",
            "family",
            "read_fraction",
            "skew",
            "snapshot",
            "shards",
            "partitions",
            "cross_fraction",
        ]
    }
}

fn keys_match(a: &Json, b: &Json, keys: &[&str]) -> bool {
    keys.iter().all(|&k| match (a.get(k), b.get(k)) {
        (Some(x), Some(y)) => x.to_string_compact() == y.to_string_compact(),
        // Mix tags are only written when set, so two records both
        // lacking a key agree on it (and old baselines keep matching).
        (None, None) => true,
        _ => false,
    })
}

/// Baseline record matching this run's mode, manager and configuration.
fn baseline_of<'a>(baseline: &'a [Json], rec: &Json) -> Option<&'a Json> {
    let mut keys = config_keys(rec).to_vec();
    keys.push("manager");
    baseline.iter().find(|b| keys_match(b, rec, &keys))
}

fn short_label(rec: &Json) -> String {
    format!(
        "{} ({}{}{}{} @{}t)",
        rec.get("protocol").and_then(Json::as_str).unwrap_or("?"),
        rec.get("mode").and_then(Json::as_str).unwrap_or("?"),
        rec.get("point")
            .and_then(Json::as_i64)
            .map(|p| format!(" p{p}"))
            .unwrap_or_default(),
        rec.get("skew")
            .and_then(Json::as_f64)
            .map(|s| format!(" θ={s}"))
            .unwrap_or_default(),
        rec.get("shards")
            .and_then(Json::as_i64)
            .map(|s| format!(" {s}sh"))
            .unwrap_or_default(),
        rec.get("threads").and_then(Json::as_i64).unwrap_or(0),
    )
}

/// Warn-only A/B summary: for every combining record with a same-config
/// mutex twin, print the throughput delta; collect a warning when the
/// combiner lags beyond the tolerance.
fn ab_summary(records: &[Json], warnings: &mut Vec<String>) {
    let manager_of = |r: &Json| {
        r.get("manager")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    for rec in records.iter().filter(|r| manager_of(r) == "combining") {
        let Some(twin) = records
            .iter()
            .filter(|r| manager_of(r) == "mutex")
            .find(|r| keys_match(r, rec, config_keys(rec)))
        else {
            continue;
        };
        let (Some(mutex_tps), Some(comb_tps)) = (
            twin.get("committed_per_sec").and_then(Json::as_f64),
            rec.get("committed_per_sec").and_then(Json::as_f64),
        ) else {
            continue;
        };
        if mutex_tps <= 0.0 {
            continue;
        }
        let delta = (comb_tps - mutex_tps) / mutex_tps * 100.0;
        let label = short_label(rec);
        eprintln!(
            "A/B {label}: combining {comb_tps:.0}/s vs mutex {mutex_tps:.0}/s ({delta:+.1}%)"
        );
        if delta < -100.0 * REGRESSION_TOLERANCE {
            warnings.push(format!(
                "A/B {label}: combining lags mutex by {delta:+.1}% ({mutex_tps:.0} -> {comb_tps:.0})"
            ));
        }
    }
}

/// Warn-only snapshot A/B summary: for every snapshot-on record with a
/// same-config snapshot-off twin (same manager, mix, everything but the
/// snapshot tag), print the throughput delta; collect a warning when
/// enabling the path *costs* throughput.
fn snapshot_summary(records: &[Json], warnings: &mut Vec<String>) {
    let snapshot_of = |r: &Json| r.get("snapshot").and_then(Json::as_bool) == Some(true);
    for rec in records.iter().filter(|r| snapshot_of(r)) {
        let keys: Vec<&str> = config_keys(rec)
            .iter()
            .copied()
            .filter(|&k| k != "snapshot")
            .chain(["manager"])
            .collect();
        let Some(twin) = records
            .iter()
            .filter(|r| !snapshot_of(r))
            .find(|r| keys_match(r, rec, &keys))
        else {
            continue;
        };
        let (Some(off_tps), Some(on_tps)) = (
            twin.get("committed_per_sec").and_then(Json::as_f64),
            rec.get("committed_per_sec").and_then(Json::as_f64),
        ) else {
            continue;
        };
        if off_tps <= 0.0 {
            continue;
        }
        let delta = (on_tps - off_tps) / off_tps * 100.0;
        let label = format!(
            "{} [{}]",
            short_label(rec),
            rec.get("manager").and_then(Json::as_str).unwrap_or("?"),
        );
        eprintln!("snapshot A/B {label}: on {on_tps:.0}/s vs off {off_tps:.0}/s ({delta:+.1}%)");
        // Below saturation an open-loop run commits what is offered, so
        // small negative deltas are sampling noise; warn only on real
        // regressions, same tolerance as everywhere else.
        if delta < -100.0 * REGRESSION_TOLERANCE {
            warnings.push(format!(
                "snapshot A/B {label}: the snapshot path costs throughput ({delta:+.1}%)"
            ));
        }
    }
}

/// Warn-only fairness A/B summary: for every scenario record with
/// fairness on and a fairness-off twin (same config, same schedule),
/// compare the *low-rate* tenant's fail ratio — the number the budgets
/// exist to protect. Warn when fairness fails to improve it.
fn fairness_summary(records: &[Json], warnings: &mut Vec<String>) {
    let fairness_of = |r: &Json| r.get("fairness").and_then(Json::as_bool) == Some(true);
    let scenario_of = |r: &Json| r.get("scenario").is_some();
    // The tenant row with the smallest weight (ties: lowest tenant id —
    // rows are already tenant-sorted).
    let low_rate_row = |r: &Json| -> Option<Json> {
        let rows = r.get("tenants")?.as_array()?;
        rows.iter()
            .min_by_key(|row| row.get("weight").and_then(Json::as_i64).unwrap_or(i64::MAX))
            .cloned()
    };
    for rec in records.iter().filter(|r| scenario_of(r) && fairness_of(r)) {
        let keys: Vec<&str> = config_keys(rec)
            .iter()
            .copied()
            .filter(|&k| k != "fairness")
            .chain(["manager"])
            .collect();
        let Some(twin) = records
            .iter()
            .filter(|r| scenario_of(r) && !fairness_of(r))
            .find(|r| keys_match(r, rec, &keys))
        else {
            continue;
        };
        let (Some(on), Some(off)) = (low_rate_row(rec), low_rate_row(twin)) else {
            continue;
        };
        let (Some(on_fail), Some(off_fail)) = (
            on.get("fail_ratio").and_then(Json::as_f64),
            off.get("fail_ratio").and_then(Json::as_f64),
        ) else {
            continue;
        };
        let label = short_label(rec);
        eprintln!(
            "fairness A/B {label}: low-rate tenant fail ratio {:.1}% (on) vs {:.1}% (off)",
            100.0 * on_fail,
            100.0 * off_fail,
        );
        if off_fail > 0.0 && on_fail >= off_fail {
            warnings.push(format!(
                "fairness A/B {label}: budgets did not improve the low-rate tenant \
                 ({:.1}% on vs {:.1}% off)",
                100.0 * on_fail,
                100.0 * off_fail,
            ));
        }
    }
}

/// The Zipfian-hotspot sweep line-up: the two early-release kinds plus
/// the blocking / abort-based baselines they are meant to beat as skew
/// rises.
const HOTSPOT_KINDS: [ProtocolKind; 4] = [
    ProtocolKind::PcpDa,
    ProtocolKind::TwoPlHp,
    ProtocolKind::Bamboo,
    ProtocolKind::Brook2Pl,
];
/// Skew points of the default full line-up's hotspot sweep.
const HOTSPOT_SKEWS: [f64; 4] = [0.0, 0.6, 0.9, 1.2];

fn main() {
    let args = parse_args();
    // `--read-fraction` (optionally with `--skew`) selects the read-heavy
    // family; `--skew` alone selects the write-heavy Zipfian-hotspot
    // family the early-release protocols sweep.
    let family = args.read_fraction.map(|f| (f, args.skew.unwrap_or(0.0)));
    let hotspot_family = if args.read_fraction.is_none() {
        args.skew
    } else {
        None
    };
    // A non-trivial `--shards` sweep replaces the workload with the
    // partitioned family sized at the sweep's *maximum* shard count, so
    // every point measures the identical item distribution and only the
    // manager sharding varies (the router rule nests: partitioning for
    // the max count also partitions for every divisor of it, and a
    // single-shard template stays single-shard under fewer shards).
    let sharded_sweep = args.shards.iter().any(|&s| s > 1);
    if sharded_sweep {
        if let Some(kind) = args.kind {
            if !kind.shardable() {
                let valid: Vec<&str> = ProtocolKind::ALL
                    .iter()
                    .filter(|k| k.shardable())
                    .map(|k| k.name())
                    .collect();
                eprintln!(
                    "{} cannot run sharded; shardable protocols: {}",
                    kind.name(),
                    valid.join(", ")
                );
                std::process::exit(2);
            }
        }
        if family.is_some() || hotspot_family.is_some() {
            eprintln!(
                "--shards > 1 uses the partitioned workload family; \
                 it cannot combine with --read-fraction / --skew"
            );
            std::process::exit(2);
        }
    }
    let max_shards = args.shards.iter().copied().max().unwrap_or(1);
    let set = match (family, hotspot_family) {
        (Some((read_fraction, skew)), _) => {
            rtdb_bench::read_heavy_workload(args.seed, read_fraction, skew)
        }
        (None, Some(theta)) => rtdb_bench::hotspot_workload(args.seed, theta),
        (None, None) if sharded_sweep => {
            rtdb_bench::partitioned_workload(args.seed, max_shards, args.cross_fraction)
        }
        (None, None) => rtdb_bench::standard_workload(args.seed),
    };
    let baseline: Option<Vec<Json>> = std::fs::read_to_string(&args.path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|json| json.as_array().map(<[Json]>::to_vec));

    // Naming tenants (`--tenants` / `--tenant-weights`) runs *only* the
    // multi-tenant overload scenario: its records answer a different
    // question (who gets shed under overload) and the full line-up
    // around it would bury that answer in runtime.
    let scenario_only = args.tenants.is_some() || args.tenant_weights.is_some();
    let closed_kinds: Vec<ProtocolKind> = if args.open_only || scenario_only {
        Vec::new()
    } else {
        match args.kind {
            Some(k) => vec![k],
            // The hotspot family answers one question — does early
            // release beat blocking as skew rises — so its default
            // line-up is the four kinds that question is about.
            None if hotspot_family.is_some() => HOTSPOT_KINDS.to_vec(),
            None => ProtocolKind::STANDARD.to_vec(),
        }
    };
    // The open-loop sweep defaults to the paper's protocol and the
    // abort-based baseline; a full nine-protocol sweep belongs in
    // figures.rs, not the load generator.
    let open_kinds: Vec<ProtocolKind> = match args.kind {
        Some(k) => vec![k],
        None => vec![ProtocolKind::PcpDa, ProtocolKind::TwoPlHp],
    };
    let closed_threads: Vec<usize> = args
        .threads
        .clone()
        .unwrap_or_else(|| DEFAULT_THREAD_SWEEP.to_vec());
    // The open loop keeps a single thread count: its sweep axis is
    // offered load, and a full threads × rate × manager cube would blow
    // the runtime budget.
    let open_threads: usize = match args.threads.as_deref() {
        Some([single]) => *single,
        _ => DEFAULT_THREADS,
    };

    let mut records = Vec::new();
    for &shards in &args.shards {
        for &kind in &closed_kinds {
            if shards > 1 && !kind.shardable() {
                eprintln!(
                    "skipping {} at {shards} shards (not shardable)",
                    kind.name()
                );
                continue;
            }
            for &threads in &closed_threads {
                for &manager in &args.managers {
                    for &snapshot in &args.snapshots {
                        // Tag every point of a sharded sweep — including
                        // shards == 1 — because the partitioned workload
                        // differs from the legacy standard one and its
                        // records must never match untagged baselines.
                        let shard_axis =
                            sharded_sweep.then_some((shards, max_shards, args.cross_fraction));
                        let mix = Mix {
                            family,
                            hotspot: hotspot_family,
                            snapshot,
                            shard_axis,
                        };
                        records.push(measure(&set, kind, manager, threads, mix, &args));
                    }
                }
            }
        }
    }
    // The read-heavy sweep of the default full line-up: PCP-DA at 95/5,
    // three Zipf exponents, snapshot off vs on, both managers — the A/B
    // that the snapshot path exists for. Explicit `--read-fraction` /
    // `--skew` runs already measure their own family above.
    if args.kind.is_none()
        && !args.open_only
        && !scenario_only
        && family.is_none()
        && hotspot_family.is_none()
        && !sharded_sweep
    {
        let family_threads: Vec<usize> = match args.threads.as_deref() {
            Some([single]) => vec![*single],
            _ => vec![4, 8],
        };
        for &skew in &[0.0, 0.6, 0.9] {
            let rh = rtdb_bench::read_heavy_workload(args.seed, 0.95, skew);
            for &threads in &family_threads {
                for &manager in &args.managers {
                    for snapshot in [false, true] {
                        let mix = Mix::unsharded(Some((0.95, skew)), snapshot);
                        records.push(measure(
                            &rh,
                            ProtocolKind::PcpDa,
                            manager,
                            threads,
                            mix,
                            &args,
                        ));
                    }
                }
            }
        }
        // Open-loop A/B at the steepest skew: both settings sweep the
        // *same* offered rates (calibration runs snapshot-off), so a
        // later saturation point — higher committed/sec at the top,
        // fewer rejects, lower miss ratio — is attributable to the
        // snapshot path alone.
        let rh = rtdb_bench::read_heavy_workload(args.seed, 0.95, 0.9);
        let rate = top_rate(&rh, ProtocolKind::PcpDa, open_threads, &args);
        for &manager in &args.managers {
            for snapshot in [false, true] {
                let mix = Mix::unsharded(Some((0.95, 0.9)), snapshot);
                records.extend(measure_open_loop(
                    &rh,
                    ProtocolKind::PcpDa,
                    manager,
                    open_threads,
                    rate,
                    mix,
                    &args,
                ));
            }
        }
        // The Zipfian-hotspot sweep of the default full line-up: the
        // early-release pair against the blocking / abort-based
        // baselines, write-heavy long transactions, skew as the axis.
        // The crossover this measures — early release pulling the p99
        // bands down as θ rises while blocking kinds convoy on the hot
        // lock — is the committed headline of the dependency-tracking
        // subsystem. Eight workers on purpose (not DEFAULT_THREADS):
        // over-subscribing the box deepens the hot-lock queue, which is
        // the regime where the tail separation shows.
        let hotspot_threads: Vec<usize> = match args.threads.as_deref() {
            Some([single]) => vec![*single],
            _ => vec![8],
        };
        for &theta in &HOTSPOT_SKEWS {
            let hw = rtdb_bench::hotspot_workload(args.seed, theta);
            for &threads in &hotspot_threads {
                for &manager in &args.managers {
                    for &kind in &HOTSPOT_KINDS {
                        let mix = Mix::hotspot(theta);
                        records.push(measure(&hw, kind, manager, threads, mix, &args));
                    }
                }
            }
        }
    }
    // The open-loop sweeps honour `--shards` too: calibration runs once
    // per protocol (unsharded, mutex — the oracle), so every shard count
    // sweeps the *same* offered rates and the records compare like for
    // like; sharded points carry the shard-axis tags, so they never
    // masquerade as standard-workload baselines.
    if !scenario_only {
        for &kind in &open_kinds {
            let rate = top_rate(&set, kind, open_threads, &args);
            for &shards in &args.shards {
                if shards > 1 && !kind.shardable() {
                    eprintln!(
                        "skipping {} open loop at {shards} shards (not shardable)",
                        kind.name()
                    );
                    continue;
                }
                let shard_axis = sharded_sweep.then_some((shards, max_shards, args.cross_fraction));
                for &manager in &args.managers {
                    for &snapshot in &args.snapshots {
                        let mix = Mix {
                            family,
                            hotspot: hotspot_family,
                            snapshot,
                            shard_axis,
                        };
                        records.extend(measure_open_loop(
                            &set,
                            kind,
                            manager,
                            open_threads,
                            rate,
                            mix,
                            &args,
                        ));
                    }
                }
            }
        }
    }
    // The multi-tenant overload scenario: explicitly requested via
    // `--tenants` / `--tenant-weights`, and part of the default full
    // line-up (PCP-DA, two tenants at 1:8, fairness off vs on). The 1:8
    // asymmetry keeps the light tenant inside its equal-share budget on
    // *offered* load (2/9 of 2x the ceiling < a 1/4-ceiling share) while
    // the hog clearly exceeds it; at 1:4 the separation is marginal and
    // scheduler noise can swallow the fairness effect.
    if scenario_only
        || (args.kind.is_none() && family.is_none() && hotspot_family.is_none() && !sharded_sweep)
    {
        let weights: Vec<u64> = args.tenant_weights.clone().unwrap_or_else(|| {
            let n = args.tenants.unwrap_or(2);
            let mut w = vec![1u64; n];
            w[n - 1] = 8;
            w
        });
        let kind = args.kind.unwrap_or(ProtocolKind::PcpDa);
        records.extend(measure_scenario(
            &set,
            kind,
            args.managers[0],
            open_threads,
            &weights,
            &args,
        ));
    }

    let mut warnings = Vec::new();
    for rec in &records {
        if let Some(base) = baseline.as_deref().and_then(|b| baseline_of(b, rec)) {
            let old = base.get("committed_per_sec").and_then(Json::as_f64);
            let new = rec.get("committed_per_sec").and_then(Json::as_f64);
            if let (Some(old), Some(new)) = (old, new) {
                let delta = (new - old) / old * 100.0;
                let label = format!(
                    "{} [{}]",
                    short_label(rec),
                    rec.get("manager").and_then(Json::as_str).unwrap_or("?"),
                );
                eprintln!("{label}: {delta:+.1}% vs baseline ({old:.0} -> {new:.0})");
                if delta < -100.0 * REGRESSION_TOLERANCE {
                    warnings.push(format!(
                        "{label}: {delta:+.1}% (baseline {old:.0}, measured {new:.0})"
                    ));
                }
            }
        }
    }
    ab_summary(&records, &mut warnings);
    snapshot_summary(&records, &mut warnings);
    fairness_summary(&records, &mut warnings);

    if !warnings.is_empty() {
        // Advisory only: threaded wall-clock throughput on shared hardware
        // is too noisy for a hard gate, but regressions should be visible.
        eprintln!(
            "WARNING: runtime throughput dropped beyond {:.0}% on:",
            100.0 * REGRESSION_TOLERANCE
        );
        for w in &warnings {
            eprintln!("  {w}");
        }
    }

    if args.check {
        if baseline.is_none() {
            eprintln!("no baseline at {} -- nothing to check against", args.path);
        }
        println!(
            "check done: {} warning(s) (advisory, always exit 0)",
            warnings.len()
        );
    } else {
        std::fs::write(&args.path, Json::Arr(records).pretty()).expect("output path writable");
        println!("written to {}", args.path);
    }
}
