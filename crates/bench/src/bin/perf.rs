//! Emit `BENCH_protocols.json`: engine throughput (ticks/sec) and engine
//! time per lock request (ns/lock-request) for every protocol of the
//! line-up on the standard workload — the numbers the repository tracks
//! across PRs to watch the perf trajectory.
//!
//! ```sh
//! cargo run --release -p rtdb-bench --bin perf              # writes ./BENCH_protocols.json
//! cargo run --release -p rtdb-bench --bin perf -- out.json  # custom path
//! ```
//!
//! `ns_per_lock_request` divides *whole-engine* wall time by the number
//! of `Protocol::request` calls, so it includes scheduling and storage —
//! it is an end-to-end cost per decision, not the isolated decision
//! latency (`benches/protocols.rs` measures that).

use rtdb::cc::UpdateModel;
use rtdb::prelude::*;
use rtdb_util::Json;
use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

const HORIZON: u64 = 10_000;

/// Delegating wrapper that counts `request` calls.
struct Counting {
    inner: Box<dyn Protocol>,
    requests: Rc<Cell<u64>>,
}

impl Protocol for Counting {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn request(&mut self, view: &dyn EngineView, req: LockRequest) -> Decision {
        self.requests.set(self.requests.get() + 1);
        self.inner.request(view, req)
    }

    fn on_grant(&mut self, view: &dyn EngineView, req: LockRequest) {
        self.inner.on_grant(view, req)
    }

    fn on_commit(&mut self, view: &dyn EngineView, who: InstanceId) {
        self.inner.on_commit(view, who)
    }

    fn on_abort(&mut self, view: &dyn EngineView, who: InstanceId) {
        self.inner.on_abort(view, who)
    }

    fn early_releases(
        &mut self,
        view: &dyn EngineView,
        who: InstanceId,
        completed_step: usize,
    ) -> Vec<(ItemId, LockMode)> {
        self.inner.early_releases(view, who, completed_step)
    }

    fn update_model(&self) -> UpdateModel {
        self.inner.update_model()
    }

    fn system_ceiling(&self, view: &dyn EngineView) -> Ceiling {
        self.inner.system_ceiling(view)
    }

    fn may_abort(&self) -> bool {
        self.inner.may_abort()
    }

    fn commit_victims(&mut self, view: &dyn EngineView, who: InstanceId) -> Vec<InstanceId> {
        self.inner.commit_victims(view, who)
    }
}

/// One engine run of protocol `i` of the line-up, counting requests.
fn run_once(set: &TransactionSet, i: usize, requests: &Rc<Cell<u64>>) {
    let mut lineup = rtdb_bench::lineup();
    let mut p = Counting {
        inner: lineup.swap_remove(i),
        requests: Rc::clone(requests),
    };
    let mut cfg = SimConfig::with_horizon(HORIZON);
    if p.name() == "2PL-PI" {
        cfg.resolve_deadlocks = true;
    }
    Engine::new(set, cfg)
        .run(&mut p)
        .expect("perf run succeeds");
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_protocols.json".into());
    let set = rtdb_bench::standard_workload(7);
    let names: Vec<&'static str> = rtdb_bench::lineup().iter().map(|p| p.name()).collect();

    println!(
        "{:<8} {:>12} {:>17} {:>14}",
        "protocol", "ticks/sec", "ns/lock-request", "requests/run"
    );
    let mut records = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let requests = Rc::new(Cell::new(0u64));
        run_once(&set, i, &requests); // warm-up
        requests.set(0);

        let mut runs = 0u64;
        let t0 = Instant::now();
        while runs < 3 || t0.elapsed().as_millis() < 300 {
            run_once(&set, i, &requests);
            runs += 1;
        }
        let elapsed = t0.elapsed();

        let ticks_per_sec = (HORIZON * runs) as f64 / elapsed.as_secs_f64();
        let ns_per_request = elapsed.as_nanos() as f64 / requests.get() as f64;
        let requests_per_run = requests.get() / runs;
        println!(
            "{:<8} {:>12.0} {:>17.1} {:>14}",
            name, ticks_per_sec, ns_per_request, requests_per_run
        );
        records.push(
            Json::obj()
                .set("protocol", *name)
                .set("ticks_per_sec", ticks_per_sec)
                .set("ns_per_lock_request", ns_per_request)
                .set("lock_requests_per_run", requests_per_run)
                .set("runs", runs),
        );
    }

    std::fs::write(&out, Json::Arr(records).pretty()).expect("output path writable");
    println!("written to {out}");
}
