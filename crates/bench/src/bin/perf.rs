//! Emit `BENCH_protocols.json`: engine throughput (ticks/sec) and engine
//! time per lock request (ns/lock-request) for every protocol of
//! [`ProtocolKind::STANDARD`] on the standard workload — the numbers the
//! repository tracks across PRs to watch the perf trajectory.
//!
//! ```sh
//! cargo run --release -p rtdb-bench --bin perf              # writes ./BENCH_protocols.json
//! cargo run --release -p rtdb-bench --bin perf -- out.json  # custom path
//! cargo run --release -p rtdb-bench --bin perf -- --check   # regression gate
//! ```
//!
//! Methodology: per protocol, two warm-up runs, then `SAMPLES` timed
//! batches of `RUNS_PER_SAMPLE` engine runs each. The reported
//! `ticks_per_sec` is the **median** of the per-batch throughputs; the
//! interquartile range is reported alongside so noisy hosts are visible
//! in the data rather than hidden in it. When a committed
//! `BENCH_protocols.json` is present, the % delta of every protocol
//! against it is printed to stderr.
//!
//! `--check [baseline.json]` measures without writing and exits nonzero
//! if any protocol's median throughput regressed more than 25% against
//! the baseline (default baseline: `BENCH_protocols.json`). `--horizon N`
//! changes the simulated horizon. Throughput depends on the horizon
//! (short runs never reach the workload's steady state), so the file
//! records the horizon it was measured at and `--check` only *enforces*
//! against baseline entries measured at the same horizon — mismatched
//! entries still print their delta, marked advisory.
//!
//! `ns_per_lock_request` divides *whole-engine* wall time by the number
//! of `request` calls, so it includes scheduling and storage — it is an
//! end-to-end cost per decision, not the isolated decision latency
//! (`benches/protocols.rs` measures that). The count comes from the
//! registry's [`AnyProtocol`] wrapper, which tallies decisions inside the
//! engine's statically dispatched loop — the timed path has no `dyn`
//! indirection on either the protocol or the view side.
//!
//! [`AnyProtocol`]: rtdb::sim::AnyProtocol

use rtdb::prelude::*;
use rtdb::sim::instantiate;
use rtdb_util::Json;
use std::time::Instant;

const DEFAULT_HORIZON: u64 = 10_000;
const WARMUPS: u32 = 2;
const SAMPLES: usize = 9;
const RUNS_PER_SAMPLE: u64 = 10;
/// A protocol fails `--check` if its median throughput drops by more
/// than this fraction of the baseline.
const REGRESSION_TOLERANCE: f64 = 0.25;

/// One engine run of `kind`, returning the number of protocol decisions.
fn run_once(set: &TransactionSet, kind: ProtocolKind, horizon: u64) -> u64 {
    let mut p = instantiate(kind);
    let mut cfg = SimConfig::with_horizon(horizon);
    if kind.may_deadlock() {
        cfg.resolve_deadlocks = true;
    }
    Engine::new(set, cfg)
        .run_any(&mut p)
        .expect("perf run succeeds");
    p.requests()
}

/// `p`-th quantile (0..=1) of an ascending-sorted slice, by linear
/// interpolation.
fn quantile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

struct Measurement {
    name: &'static str,
    median: f64,
    q1: f64,
    q3: f64,
    ns_per_request: f64,
    requests_per_run: u64,
    runs: u64,
}

fn measure(set: &TransactionSet, kind: ProtocolKind, horizon: u64) -> Measurement {
    for _ in 0..WARMUPS {
        run_once(set, kind, horizon);
    }

    let mut requests = 0u64;
    let mut throughputs = Vec::with_capacity(SAMPLES);
    let mut total_elapsed_ns = 0u128;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..RUNS_PER_SAMPLE {
            requests += run_once(set, kind, horizon);
        }
        let elapsed = t0.elapsed();
        total_elapsed_ns += elapsed.as_nanos();
        throughputs.push((horizon * RUNS_PER_SAMPLE) as f64 / elapsed.as_secs_f64());
    }
    throughputs.sort_by(|a, b| a.partial_cmp(b).expect("finite throughput"));

    let runs = SAMPLES as u64 * RUNS_PER_SAMPLE;
    Measurement {
        name: kind.name(),
        median: quantile(&throughputs, 0.5),
        q1: quantile(&throughputs, 0.25),
        q3: quantile(&throughputs, 0.75),
        ns_per_request: total_elapsed_ns as f64 / requests as f64,
        requests_per_run: requests / runs,
        runs,
    }
}

struct BaselineEntry {
    name: String,
    ticks_per_sec: f64,
    /// Horizon the baseline was measured at. Older files predate the
    /// field; their horizon is unknown.
    horizon: Option<u64>,
}

/// Per-protocol baseline from a committed benchmark file, if it exists
/// and parses.
fn load_baseline(path: &str) -> Option<Vec<BaselineEntry>> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = Json::parse(&text).ok()?;
    let arr = json.as_array()?;
    let mut out = Vec::new();
    for rec in arr {
        out.push(BaselineEntry {
            name: rec.get("protocol")?.as_str()?.to_string(),
            ticks_per_sec: rec.get("ticks_per_sec")?.as_f64()?,
            horizon: rec
                .get("horizon")
                .and_then(|h| h.as_f64())
                .map(|h| h as u64),
        });
    }
    Some(out)
}

fn baseline_of<'a>(baseline: &'a [BaselineEntry], name: &str) -> Option<&'a BaselineEntry> {
    baseline.iter().find(|e| e.name == name)
}

struct Args {
    check: bool,
    horizon: u64,
    /// Output path (measure mode) or baseline path (`--check` mode).
    path: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        check: false,
        horizon: DEFAULT_HORIZON,
        path: "BENCH_protocols.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => args.check = true,
            "--horizon" => {
                let v = it.next().expect("--horizon takes a value");
                args.horizon = v.parse().expect("--horizon takes an integer");
            }
            other => args.path = other.to_string(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let set = rtdb_bench::standard_workload(7);
    // In measure mode the committed file doubles as the comparison
    // baseline (before it is overwritten); in check mode it IS the path.
    let baseline = load_baseline(&args.path);

    println!(
        "{:<8} {:>12} {:>14} {:>17} {:>14}",
        "protocol", "ticks/sec", "IQR", "ns/lock-request", "requests/run"
    );
    let mut records = Vec::new();
    let mut regressions = Vec::new();
    for &kind in ProtocolKind::STANDARD.iter() {
        let m = measure(&set, kind, args.horizon);
        println!(
            "{:<8} {:>12.0} {:>14} {:>17.1} {:>14}",
            m.name,
            m.median,
            format!("{:.0}..{:.0}", m.q1, m.q3),
            m.ns_per_request,
            m.requests_per_run
        );
        if let Some(entry) = baseline.as_deref().and_then(|b| baseline_of(b, m.name)) {
            let base = entry.ticks_per_sec;
            let delta = (m.median - base) / base * 100.0;
            // Throughput is horizon-dependent (short runs never reach the
            // workload's steady state), so a delta against a baseline
            // measured at a different horizon is advisory only.
            let comparable = entry.horizon == Some(args.horizon);
            eprintln!(
                "{}: {delta:+.1}% vs baseline ({base:.0} -> {:.0}){}",
                m.name,
                m.median,
                if comparable {
                    ""
                } else {
                    " [advisory: baseline horizon differs]"
                }
            );
            if comparable && delta < -100.0 * REGRESSION_TOLERANCE {
                regressions.push(format!(
                    "{}: {delta:+.1}% (baseline {base:.0}, measured {:.0})",
                    m.name, m.median
                ));
            }
        }
        records.push(
            Json::obj()
                .set("protocol", m.name)
                .set("horizon", args.horizon)
                .set("ticks_per_sec", m.median)
                .set("ticks_per_sec_q1", m.q1)
                .set("ticks_per_sec_q3", m.q3)
                .set("ns_per_lock_request", m.ns_per_request)
                .set("lock_requests_per_run", m.requests_per_run)
                .set("runs", m.runs),
        );
    }

    if args.check {
        match baseline.as_deref() {
            None => eprintln!("no baseline at {} -- nothing to check against", args.path),
            Some(b) if !b.iter().any(|e| e.horizon == Some(args.horizon)) => eprintln!(
                "no baseline entry was measured at horizon {} -- deltas are advisory only",
                args.horizon
            ),
            _ => {}
        }
        if regressions.is_empty() {
            println!(
                "check passed: no protocol regressed more than {:.0}%",
                100.0 * REGRESSION_TOLERANCE
            );
        } else {
            eprintln!(
                "check FAILED: throughput regression beyond {:.0}%:",
                100.0 * REGRESSION_TOLERANCE
            );
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    } else {
        std::fs::write(&args.path, Json::Arr(records).pretty()).expect("output path writable");
        println!("written to {}", args.path);
    }
}
