//! `rtdbsim` — run a workload file through the simulator and the
//! schedulability analysis from the command line.
//!
//! ```sh
//! rtdbsim workloads/example3.json                      # PCP-DA + summary
//! rtdbsim workloads/avionics.json --protocol rw-pcp --gantt
//! rtdbsim workloads/avionics.json --compare            # all protocols
//! rtdbsim workloads/avionics.json --analysis           # §9 admission
//! rtdbsim workloads/example3.json --horizon 50 --json  # machine output
//! ```
//!
//! ## Workload file format
//!
//! ```json
//! {
//!   "priority": "rate_monotonic",          // or "as_listed" (default)
//!   "templates": [
//!     {
//!       "name": "sensor",
//!       "period": 10,
//!       "offset": 0,                        // optional
//!       "instances": null,                  // optional cap
//!       "steps": [
//!         { "op": "write", "item": 0, "duration": 1 },
//!         { "op": "read",  "item": 1, "duration": 1 },
//!         { "op": "compute", "duration": 2 }
//!       ]
//!     }
//!   ]
//! }
//! ```

use rtdb::prelude::*;
use rtdb::sim::{gantt, sweep};
use rtdb_util::Json;
use std::process::ExitCode;

fn field_u64(obj: &Json, key: &str, what: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_i64)
        .and_then(|n| u64::try_from(n).ok())
        .ok_or_else(|| format!("{what}: `{key}` must be a non-negative integer"))
}

fn parse_step(step: &Json) -> Result<Step, String> {
    let duration = field_u64(step, "duration", "step")?;
    match step.get("op").and_then(Json::as_str) {
        Some("read") => Ok(Step::read(
            ItemId(field_u64(step, "item", "read step")? as u32),
            duration,
        )),
        Some("write") => Ok(Step::write(
            ItemId(field_u64(step, "item", "write step")? as u32),
            duration,
        )),
        Some("compute") => Ok(Step::compute(duration)),
        _ => Err("step: `op` must be \"read\", \"write\" or \"compute\"".to_string()),
    }
}

fn parse_workload(text: &str) -> Result<TransactionSet, String> {
    let file = Json::parse(text).map_err(|e| format!("workload parse error: {e}"))?;
    let templates = file
        .get("templates")
        .and_then(Json::as_array)
        .ok_or("workload: `templates` array is required")?;
    let mut builder = SetBuilder::new();
    for spec in templates {
        let name = spec
            .get("name")
            .and_then(Json::as_str)
            .ok_or("template: `name` string is required")?;
        let period = field_u64(spec, "period", "template")?;
        let offset = match spec.get("offset") {
            Some(_) => field_u64(spec, "offset", "template")?,
            None => 0,
        };
        let steps: Vec<Step> = spec
            .get("steps")
            .and_then(Json::as_array)
            .ok_or("template: `steps` array is required")?
            .iter()
            .map(parse_step)
            .collect::<Result<_, _>>()?;
        let mut t = TransactionTemplate::new(name.to_string(), period, steps).with_offset(offset);
        match spec.get("instances") {
            None | Some(Json::Null) => {}
            Some(n) => {
                let n = n
                    .as_i64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or("template: `instances` must be null or a non-negative integer")?;
                t = t.with_instances(n);
            }
        }
        builder.add(t);
    }
    match file.get("priority").and_then(Json::as_str) {
        Some("rate_monotonic") => builder.build_rate_monotonic(),
        Some("as_listed") | None => builder.build(),
        Some(other) => {
            let msg =
                "workload: unknown priority rule `{r}` (use \"rate_monotonic\" or \"as_listed\")";
            return Err(msg.replace("{r}", other));
        }
    }
    .map_err(|e| format!("invalid workload: {e}"))
}

struct Args {
    workload: String,
    protocol: String,
    horizon: Option<u64>,
    gantt: bool,
    json: bool,
    compare: bool,
    analysis: bool,
    trace: Option<String>,
}

fn usage() -> String {
    let names: Vec<&'static str> = ProtocolKind::ALL.iter().map(|k| k.name()).collect();
    format!(
        "usage: rtdbsim <workload.json> [--protocol NAME] [--horizon N] \
         [--gantt] [--json] [--compare] [--analysis] [--trace OUT.json]\n\
         protocols (case-insensitive): {} (default: {})",
        names.join(", "),
        ProtocolKind::PcpDa.name(),
    )
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        workload: String::new(),
        protocol: "pcp-da".into(),
        horizon: None,
        gantt: false,
        json: false,
        compare: false,
        analysis: false,
        trace: None,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--protocol" => {
                args.protocol = it.next().ok_or("--protocol needs a value")?.clone();
            }
            "--horizon" => {
                args.horizon = Some(
                    it.next()
                        .ok_or("--horizon needs a value")?
                        .parse()
                        .map_err(|e| format!("bad horizon: {e}"))?,
                );
            }
            "--trace" => {
                args.trace = Some(it.next().ok_or("--trace needs a path")?.clone());
            }
            "--gantt" => args.gantt = true,
            "--json" => args.json = true,
            "--compare" => args.compare = true,
            "--analysis" => args.analysis = true,
            other if args.workload.is_empty() && !other.starts_with('-') => {
                args.workload = other.to_string();
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if args.workload.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

fn config(args: &Args) -> SimConfig {
    let mut cfg = match args.horizon {
        Some(h) => SimConfig::with_horizon(h),
        None => SimConfig::default(),
    };
    // The CLI should always finish: resolve 2PL/Naive deadlocks by abort.
    cfg.resolve_deadlocks = true;
    cfg
}

fn print_summary(set: &TransactionSet, run: &RunResult) {
    println!("protocol: {}", run.protocol);
    println!(
        "instances: {}  committed: {}  aborts: {}",
        run.metrics.instances().count(),
        run.history.committed(),
        run.history.aborts()
    );
    println!(
        "deadline misses: {} ({:.2}%)  total blocking: {}  Max_Sysceil: {}",
        run.metrics.deadline_misses(),
        run.metrics.miss_ratio() * 100.0,
        run.metrics.total_blocking(),
        run.metrics.max_sysceil
    );
    println!("\nper-template:");
    println!(
        "  {:<14} {:>8} {:>6} {:>7} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "name",
        "released",
        "done",
        "misses",
        "p50-resp",
        "p99-resp",
        "max-resp",
        "max-block",
        "restarts"
    );
    for (txn, m) in run.metrics.by_template() {
        let t = set.template(txn);
        let pct = |q| {
            run.metrics
                .response_percentile(txn, q)
                .map(|d| d.raw().to_string())
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "  {:<14} {:>8} {:>6} {:>7} {:>9} {:>9} {:>9} {:>10} {:>9}",
            t.name,
            m.released,
            m.completed,
            m.deadline_misses,
            pct(0.5),
            pct(0.99),
            m.max_response,
            m.max_blocking,
            m.restarts
        );
    }
    let replay_ok = run.is_conflict_serializable();
    println!(
        "\nserializability (conflict graph): {}",
        if replay_ok { "OK" } else { "VIOLATED" }
    );
}

fn print_json(run: &RunResult) {
    let templates: Vec<Json> = run
        .metrics
        .by_template()
        .iter()
        .map(|(txn, m)| {
            Json::obj()
                .set("template", format!("{txn}"))
                .set("released", m.released)
                .set("completed", m.completed)
                .set("deadline_misses", m.deadline_misses)
                .set("max_response", m.max_response.raw())
                .set("mean_response", m.mean_response)
                .set("max_blocking", m.max_blocking.raw())
                .set("restarts", m.restarts)
        })
        .collect();
    let out = Json::obj()
        .set("protocol", run.protocol.to_string())
        .set("committed", run.history.committed())
        .set("aborts", run.history.aborts())
        .set("deadline_misses", run.metrics.deadline_misses())
        .set("miss_ratio", run.metrics.miss_ratio())
        .set("total_blocking", run.metrics.total_blocking().raw())
        .set("max_sysceil", run.metrics.max_sysceil.to_string())
        .set("serializable", run.is_conflict_serializable())
        .set("templates", Json::Arr(templates));
    println!("{}", out.pretty());
}

fn print_analysis(set: &TransactionSet) {
    println!(
        "{:<10} {:>14} {:>14} {:>12}",
        "protocol", "LL-admit", "RTA-admit", "breakdown-U"
    );
    for kind in AnalysisProtocol::all() {
        let rep = schedulable(set, kind);
        let (_, bu) = breakdown_utilization(set, kind);
        println!(
            "{:<10} {:>14} {:>14} {:>12.3}",
            kind.name(),
            rep.liu_layland_schedulable(),
            rep.rta_schedulable(),
            bu
        );
    }
    let repaired = rtdb::analysis::schedulable_repaired_pcpda(set);
    println!(
        "{:<10} {:>14} {:>14} {:>12}",
        "PCP-DA*",
        repaired.liu_layland_schedulable(),
        repaired.rta_schedulable(),
        "(chain B_i)"
    );
    println!("\nper-template blocking terms:");
    println!(
        "  {:<14} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "name", "PCP-DA", "RW-PCP", "PCP", "CCP", "PCP-DA*"
    );
    for t in set.templates() {
        println!(
            "  {:<14} {:>8} {:>8} {:>8} {:>8} {:>10}",
            t.name,
            rtdb::analysis::worst_blocking(set, AnalysisProtocol::PcpDa, t.id),
            rtdb::analysis::worst_blocking(set, AnalysisProtocol::RwPcp, t.id),
            rtdb::analysis::worst_blocking(set, AnalysisProtocol::Pcp, t.id),
            rtdb::analysis::ccp_worst_blocking(set, t.id),
            rtdb::analysis::repaired_worst_blocking(set, t.id),
        );
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&args.workload) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.workload);
            return ExitCode::FAILURE;
        }
    };
    let set = match parse_workload(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if args.analysis {
        print_analysis(&set);
        return ExitCode::SUCCESS;
    }

    if args.compare {
        let mut protocols = sweep::standard_protocols();
        match sweep::compare_protocols(&set, &config(&args), &mut protocols) {
            Ok(rows) => print!("{}", sweep::format_table(&rows)),
            Err(e) => {
                eprintln!("simulation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let kind = match args.protocol.parse::<ProtocolKind>() {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let run = match Engine::new(&set, config(&args)).run_kind(kind) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.json {
        print_json(&run);
    } else {
        print_summary(&set, &run);
        if args.gantt {
            println!("\n{}", gantt::render(&set, &run.trace));
        }
    }
    if let Some(path) = &args.trace {
        if let Err(e) = std::fs::write(path, run.trace.to_json()) {
            eprintln!("cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace written to {path}");
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"{
        "priority": "rate_monotonic",
        "templates": [
            {"name": "fast", "period": 10,
             "steps": [{"op": "write", "item": 0, "duration": 1},
                       {"op": "compute", "duration": 1}]},
            {"name": "slow", "period": 40, "offset": 2, "instances": 3,
             "steps": [{"op": "read", "item": 0, "duration": 2}]}
        ]
    }"#;

    #[test]
    fn parses_workload_files() {
        let set = parse_workload(EXAMPLE).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.priority_of(TxnId(0)) > set.priority_of(TxnId(1)));
        assert_eq!(set.template(TxnId(1)).offset, Tick(2));
        assert_eq!(set.template(TxnId(1)).instances, Some(3));
    }

    #[test]
    fn rejects_malformed_files() {
        assert!(parse_workload("{}").is_err());
        assert!(parse_workload("not json").is_err());
        let zero_period = r#"{"templates":[{"name":"a","period":0,
            "steps":[{"op":"compute","duration":1}]}]}"#;
        assert!(parse_workload(zero_period).is_err());
    }

    #[test]
    fn args_parse() {
        let a = parse_args(&[
            "w.json".into(),
            "--protocol".into(),
            "rw-pcp".into(),
            "--horizon".into(),
            "500".into(),
            "--gantt".into(),
        ])
        .unwrap();
        assert_eq!(a.workload, "w.json");
        assert_eq!(a.protocol, "rw-pcp");
        assert_eq!(a.horizon, Some(500));
        assert!(a.gantt);
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&["w.json".into(), "--bogus".into()]).is_err());
    }

    #[test]
    fn all_protocol_names_resolve() {
        // The historical CLI spellings must keep parsing (now through the
        // registry), along with every registry name in any case.
        for name in [
            "pcp-da",
            "pcp-da-literal",
            "literal",
            "rw-pcp",
            "rwpcp",
            "pcp",
            "ccp",
            "2pl-pi",
            "2pl-hp",
            "2plhp",
            "occ",
            "occ-bc",
            "naive-da",
        ] {
            assert!(name.parse::<ProtocolKind>().is_ok(), "{name}");
        }
        for kind in ProtocolKind::ALL {
            assert_eq!(kind.name().to_uppercase().parse(), Ok(kind));
        }
        let err = "nonsense".parse::<ProtocolKind>().unwrap_err();
        assert!(err.to_string().contains("PCP-DA"));
        assert!(usage().contains("Naive-DA"));
    }

    #[test]
    fn end_to_end_run() {
        let set = parse_workload(EXAMPLE).unwrap();
        let kind: ProtocolKind = "pcp-da".parse().unwrap();
        let run = Engine::new(&set, SimConfig::with_horizon(100))
            .run_kind(kind)
            .unwrap();
        assert!(run.history.committed() > 0);
        assert!(run.is_conflict_serializable());
    }
}
