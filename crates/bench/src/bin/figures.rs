//! Regenerate every table and figure of the paper (experiments E1–E11).
//!
//! ```sh
//! cargo run -p rtdb-bench --bin figures            # everything
//! cargo run -p rtdb-bench --bin figures -- fig3    # one experiment
//! ```
//!
//! Each experiment prints a human-readable reproduction (timeline or
//! table), states the paper's expected outcome next to the measured one,
//! and appends a JSON record to `results/experiments.json` so
//! EXPERIMENTS.md can be regenerated from data.

use rtdb::paper;
use rtdb::prelude::*;
use rtdb::sim::{gantt, sweep, TraceEvent};
use rtdb_util::Json;
use std::collections::BTreeMap;

struct Record {
    experiment: String,
    artifact: String,
    expected: Json,
    measured: Json,
    matches: bool,
}

#[derive(Default)]
struct Report {
    records: Vec<Record>,
}

impl Report {
    fn check(&mut self, experiment: &str, artifact: &str, expected: Json, measured: Json) {
        let matches = expected == measured;
        println!(
            "  [{}] {artifact}: expected {expected} / measured {measured}",
            if matches { "OK" } else { "MISMATCH" }
        );
        self.records.push(Record {
            experiment: experiment.to_string(),
            artifact: artifact.to_string(),
            expected,
            measured,
            matches,
        });
    }

    fn write(&self) {
        std::fs::create_dir_all("results").ok();
        let records: Vec<Json> = self
            .records
            .iter()
            .map(|r| {
                Json::obj()
                    .set("experiment", r.experiment.as_str())
                    .set("artifact", r.artifact.as_str())
                    .set("expected", r.expected.clone())
                    .set("measured", r.measured.clone())
                    .set("matches", r.matches)
            })
            .collect();
        let json = Json::Arr(records).pretty();
        std::fs::write("results/experiments.json", json).expect("results are writable");
        let failed = self.records.iter().filter(|r| !r.matches).count();
        println!(
            "\n{} checks, {} mismatches -> results/experiments.json",
            self.records.len(),
            failed
        );
    }
}

fn run(set: &TransactionSet, protocol: &mut dyn Protocol) -> RunResult {
    Engine::new(set, SimConfig::default())
        .run(protocol)
        .expect("simulation succeeds")
}

fn completion(r: &RunResult, txn: u32, seq: u32) -> u64 {
    r.metrics
        .instance(InstanceId::new(TxnId(txn), seq))
        .and_then(|m| m.completion)
        .map(|t| t.raw())
        .unwrap_or(u64::MAX)
}

fn blocking(r: &RunResult, txn: u32, seq: u32) -> u64 {
    r.metrics
        .instance(InstanceId::new(TxnId(txn), seq))
        .map(|m| m.blocking.raw())
        .unwrap_or(u64::MAX)
}

fn fig1(rep: &mut Report) {
    println!("== E1 / Figure 1: Example 1 under RW-PCP ==");
    let set = paper::example1();
    let r = run(&set, &mut RwPcp::new());
    println!("{}", gantt::render(&set, &r.trace));
    rep.check("E1", "T3 completes", 3.into(), completion(&r, 2, 0).into());
    rep.check("E1", "T1 completes", 4.into(), completion(&r, 0, 0).into());
    rep.check("E1", "T2 completes", 5.into(), completion(&r, 1, 0).into());
    rep.check(
        "E1",
        "T2 ceiling-blocked (ticks)",
        2.into(),
        blocking(&r, 1, 0).into(),
    );
    rep.check(
        "E1",
        "T1 conflict-blocked (ticks)",
        1.into(),
        blocking(&r, 0, 0).into(),
    );
}

fn fig2(rep: &mut Report) {
    println!("== E2 / Figure 2: Example 3 under PCP-DA ==");
    let set = paper::example3();
    let mut p = PcpDa::new();
    let r = run(&set, &mut p);
    println!("{}", gantt::render(&set, &r.trace));
    rep.check(
        "E2",
        "T1#0 completes",
        3.into(),
        completion(&r, 0, 0).into(),
    );
    rep.check(
        "E2",
        "T1#1 completes",
        8.into(),
        completion(&r, 0, 1).into(),
    );
    rep.check("E2", "T2 completes", 9.into(), completion(&r, 1, 0).into());
    rep.check("E2", "T1 blocking", 0.into(), blocking(&r, 0, 0).into());
    rep.check(
        "E2",
        "deadline misses",
        0.into(),
        r.metrics.deadline_misses().into(),
    );
    let rules: Vec<String> = p
        .grant_log()
        .iter()
        .map(|(req, rule)| format!("{}:{}={:?}", req.who, req.item, rule))
        .collect();
    println!("  grant rules: {}", rules.join(" "));
}

fn fig3(rep: &mut Report) {
    println!("== E3 / Figure 3: Example 3 under RW-PCP ==");
    let set = paper::example3();
    let r = run(&set, &mut RwPcp::new());
    println!("{}", gantt::render(&set, &r.trace));
    rep.check(
        "E3",
        "T1#0 blocked (worst case 4)",
        4.into(),
        blocking(&r, 0, 0).into(),
    );
    rep.check("E3", "T2 completes", 5.into(), completion(&r, 1, 0).into());
    rep.check(
        "E3",
        "T1#0 completes (late)",
        7.into(),
        completion(&r, 0, 0).into(),
    );
    rep.check(
        "E3",
        "T1#0 misses deadline at 6",
        true.into(),
        r.trace
            .events()
            .iter()
            .any(|e| {
                matches!(e, TraceEvent::DeadlineMiss { at, who }
                if who.txn == TxnId(0) && who.seq == 0 && at.raw() == 6)
            })
            .into(),
    );
}

fn fig4(rep: &mut Report) {
    println!("== E4 / Figure 4: Example 4 under PCP-DA ==");
    let set = paper::example4();
    let mut p = PcpDa::new();
    let r = run(&set, &mut p);
    println!("{}", gantt::render(&set, &r.trace));
    rep.check("E4", "T3 completes", 3.into(), completion(&r, 2, 0).into());
    rep.check("E4", "T1 completes", 6.into(), completion(&r, 0, 0).into());
    rep.check("E4", "T4 completes", 9.into(), completion(&r, 3, 0).into());
    rep.check("E4", "T2 completes", 11.into(), completion(&r, 1, 0).into());
    rep.check(
        "E4",
        "total blocking",
        0.into(),
        r.metrics.total_blocking().raw().into(),
    );
    rep.check(
        "E4",
        "Max_Sysceil = P2",
        set.priority_of(TxnId(1)).level().into(),
        r.metrics
            .max_sysceil
            .priority()
            .map(|p| p.level())
            .unwrap_or(u32::MAX)
            .into(),
    );
    let t3_rule = p
        .grant_log()
        .iter()
        .find(|(req, _)| {
            req.who.txn == TxnId(2) && req.item == paper::Z && req.mode == LockMode::Read
        })
        .map(|(_, rule)| format!("{rule:?}"))
        .unwrap_or_default();
    rep.check("E4", "T3 read z granted via", "Lc4".into(), t3_rule.into());
}

fn fig5(rep: &mut Report) {
    println!("== E5 / Figure 5: Example 4 under RW-PCP ==");
    let set = paper::example4();
    let r = run(&set, &mut RwPcp::new());
    println!("{}", gantt::render(&set, &r.trace));
    rep.check("E5", "T4 completes", 5.into(), completion(&r, 3, 0).into());
    rep.check("E5", "T1 completes", 7.into(), completion(&r, 0, 0).into());
    rep.check("E5", "T3 completes", 9.into(), completion(&r, 2, 0).into());
    rep.check("E5", "T2 completes", 11.into(), completion(&r, 1, 0).into());
    rep.check(
        "E5",
        "T1 conflict-blocked",
        1.into(),
        blocking(&r, 0, 0).into(),
    );
    rep.check(
        "E5",
        "T3 ceiling-blocked",
        4.into(),
        blocking(&r, 2, 0).into(),
    );
    rep.check(
        "E5",
        "Max_Sysceil = P1",
        set.priority_of(TxnId(0)).level().into(),
        r.metrics
            .max_sysceil
            .priority()
            .map(|p| p.level())
            .unwrap_or(u32::MAX)
            .into(),
    );
}

fn table1(rep: &mut Report) {
    println!("== E6 / Table 1: lock compatibility ==");
    print!("{}", rtdb::pcpda::compat::render_table1());
    use rtdb::pcpda::compat::{compatible, CompatInput};
    let cell = |held, requested, disjoint| {
        compatible(CompatInput {
            held,
            requested,
            holder_reads_disjoint_from_requester_writes: disjoint,
        })
    };
    rep.check(
        "E6",
        "R/R",
        true.into(),
        cell(LockMode::Read, LockMode::Read, true).into(),
    );
    rep.check(
        "E6",
        "R/W",
        false.into(),
        cell(LockMode::Read, LockMode::Write, true).into(),
    );
    rep.check(
        "E6",
        "W/R clean",
        true.into(),
        cell(LockMode::Write, LockMode::Read, true).into(),
    );
    rep.check(
        "E6",
        "W/R dirty",
        false.into(),
        cell(LockMode::Write, LockMode::Read, false).into(),
    );
    rep.check(
        "E6",
        "W/W",
        true.into(),
        cell(LockMode::Write, LockMode::Write, false).into(),
    );
}

fn example5(rep: &mut Report) {
    println!("== E7 / Example 5: deadlock under condition (2), none under PCP-DA ==");
    let set = paper::example5();
    let naive = run(&set, &mut NaiveDa::new());
    println!("{}", gantt::render(&set, &naive.trace));
    rep.check(
        "E7",
        "Naive-DA deadlocks",
        true.into(),
        matches!(naive.outcome, RunOutcome::Deadlock(_)).into(),
    );
    let da = run(&set, &mut PcpDa::new());
    rep.check(
        "E7",
        "PCP-DA completes",
        true.into(),
        matches!(da.outcome, RunOutcome::Completed).into(),
    );
    rep.check(
        "E7",
        "PCP-DA commits both",
        2.into(),
        da.history.committed().into(),
    );
}

fn analysis(rep: &mut Report) {
    println!("== E8 / §9: worst-case blocking and schedulability ==");
    let set = paper::example3();
    println!("  Example 3: T1 (C=2, Pd=5), T2 (C=5, Pd=10)");
    let da = schedulable(&set, AnalysisProtocol::PcpDa);
    let rw = schedulable(&set, AnalysisProtocol::RwPcp);
    println!(
        "  B_1: PCP-DA {} vs RW-PCP {}   RTA(T1): {:?} vs {:?}",
        da.blocking[0], rw.blocking[0], da.response[0], rw.response[0]
    );
    rep.check("E8", "B_1 PCP-DA", 0.into(), da.blocking[0].raw().into());
    rep.check("E8", "B_1 RW-PCP", 5.into(), rw.blocking[0].raw().into());
    rep.check(
        "E8",
        "PCP-DA schedulable",
        true.into(),
        da.rta_schedulable().into(),
    );
    rep.check(
        "E8",
        "RW-PCP schedulable",
        false.into(),
        rw.rta_schedulable().into(),
    );
    // The repaired protocol's chain-closure bound agrees on Example 3
    // (BTS_1 is empty, so the chain is empty too).
    let repaired = rtdb::analysis::schedulable_repaired_pcpda(&set);
    rep.check(
        "E8",
        "B_1 repaired PCP-DA",
        0.into(),
        repaired.blocking[0].raw().into(),
    );
    rep.check(
        "E8",
        "repaired PCP-DA schedulable",
        true.into(),
        repaired.rta_schedulable().into(),
    );

    // BTS table over a batch of random workloads.
    let mut subset = true;
    let mut strictly_smaller = 0usize;
    for seed in 0..50u64 {
        let set = WorkloadParams {
            seed,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .set;
        for t in set.templates() {
            let da: std::collections::BTreeSet<TxnId> =
                rtdb::analysis::bts(&set, AnalysisProtocol::PcpDa, t.id)
                    .into_iter()
                    .collect();
            let rw: std::collections::BTreeSet<TxnId> =
                rtdb::analysis::bts(&set, AnalysisProtocol::RwPcp, t.id)
                    .into_iter()
                    .collect();
            subset &= da.is_subset(&rw);
            strictly_smaller += usize::from(da.len() < rw.len());
        }
    }
    println!(
        "  random sets: BTS(PCP-DA) ⊆ BTS(RW-PCP) in all cases; strictly smaller {strictly_smaller} times"
    );
    rep.check(
        "E8",
        "BTS subset over 50 random sets",
        true.into(),
        subset.into(),
    );
    rep.check(
        "E8",
        "BTS strictly smaller somewhere",
        true.into(),
        (strictly_smaller > 0).into(),
    );
}

fn sweep_experiment(rep: &mut Report) {
    println!("== E9: randomized protocol comparison (extension) ==");
    let mut da_never_blocks_more = true;
    for &(util, hot) in &[(0.4, 0.3), (0.6, 0.5), (0.75, 0.8)] {
        let set = WorkloadParams {
            templates: 6,
            items: 16,
            target_utilization: util,
            hotspot_items: 3,
            hotspot_prob: hot,
            write_fraction: 0.4,
            seed: 99,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .set;
        println!("\n  U={util} contention={hot}:");
        let mut protocols = sweep::standard_protocols();
        let rows = sweep::compare_protocols(&set, &SimConfig::with_horizon(30_000), &mut protocols)
            .expect("sweep succeeds");
        print!("{}", indent(&sweep::format_table(&rows)));
        let da = rows.iter().find(|r| r.name == "PCP-DA").unwrap();
        let rw = rows.iter().find(|r| r.name == "RW-PCP").unwrap();
        da_never_blocks_more &= da.total_blocking <= rw.total_blocking;
    }
    rep.check(
        "E9",
        "PCP-DA total blocking <= RW-PCP on all sweeps",
        true.into(),
        da_never_blocks_more.into(),
    );
}

fn ceilings_experiment(rep: &mut Report) {
    println!("== E10: Max_Sysceil push-down over random workloads (extension) ==");
    let mut pushdown = true;
    let mut rows: Vec<(u64, String, String)> = Vec::new();
    for seed in 0..20u64 {
        let set = WorkloadParams {
            seed,
            target_utilization: 0.6,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .set;
        let da = Engine::new(&set, SimConfig::with_horizon(5_000))
            .run(&mut PcpDa::new())
            .unwrap();
        let rw = Engine::new(&set, SimConfig::with_horizon(5_000))
            .run(&mut RwPcp::new())
            .unwrap();
        pushdown &= da.metrics.max_sysceil <= rw.metrics.max_sysceil;
        rows.push((
            seed,
            da.metrics.max_sysceil.to_string(),
            rw.metrics.max_sysceil.to_string(),
        ));
    }
    println!("  seed: Max_Sysceil PCP-DA vs RW-PCP");
    for (seed, da, rw) in rows.iter().take(8) {
        println!("  {seed:>4}: {da:>6} vs {rw:>6}");
    }
    println!("  ... ({} seeds total)", rows.len());
    rep.check(
        "E10",
        "Max_Sysceil(PCP-DA) <= Max_Sysceil(RW-PCP), 20 seeds",
        true.into(),
        pushdown.into(),
    );
}

fn breakdown_experiment(rep: &mut Report) {
    println!("== E11: breakdown utilization (extension) ==");
    let mut sum_da = 0.0;
    let mut sum_rw = 0.0;
    let mut sum_pcp = 0.0;
    let mut ordered = true;
    let n = 25u64;
    for seed in 0..n {
        let set = WorkloadParams {
            seed,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .set;
        let (l_da, u_da) = breakdown_utilization(&set, AnalysisProtocol::PcpDa);
        let (l_rw, u_rw) = breakdown_utilization(&set, AnalysisProtocol::RwPcp);
        let (l_pcp, u_pcp) = breakdown_utilization(&set, AnalysisProtocol::Pcp);
        sum_da += u_da;
        sum_rw += u_rw;
        sum_pcp += u_pcp;
        ordered &= l_da + 1e-9 >= l_rw && l_rw + 1e-9 >= l_pcp;
    }
    let n = n as f64;
    println!(
        "  mean breakdown utilization over {n} random sets:\n    PCP-DA {:.3}   RW-PCP {:.3}   PCP {:.3}",
        sum_da / n,
        sum_rw / n,
        sum_pcp / n
    );
    rep.check(
        "E11",
        "breakdown ordering PCP-DA >= RW-PCP >= PCP",
        true.into(),
        ordered.into(),
    );
    rep.check(
        "E11",
        "PCP-DA mean breakdown strictly above RW-PCP",
        true.into(),
        (sum_da > sum_rw).into(),
    );
}

fn erratum(rep: &mut Report) {
    println!("== ERRATUM: Theorem 2 counterexample under literal LC3 ==");
    // Seed chosen so the literal protocol deadlocks under the in-tree
    // PRNG (the original seed 4 predates the rand -> rtdb-util swap).
    let set = WorkloadParams {
        seed: 29,
        templates: 4,
        items: 4,
        target_utilization: 0.45,
        ..Default::default()
    }
    .generate()
    .unwrap()
    .set;
    let literal = Engine::new(&set, SimConfig::with_horizon(4_000))
        .run(&mut PcpDa::paper_literal())
        .unwrap();
    let fixed = Engine::new(&set, SimConfig::with_horizon(4_000))
        .run(&mut PcpDa::new())
        .unwrap();
    rep.check(
        "ERRATUM",
        "literal LC3 deadlocks on seed-29 workload",
        true.into(),
        matches!(literal.outcome, RunOutcome::Deadlock(_)).into(),
    );
    rep.check(
        "ERRATUM",
        "fixed LC3 completes with no misses",
        true.into(),
        (matches!(fixed.outcome, RunOutcome::Completed) && fixed.metrics.deadline_misses() == 0)
            .into(),
    );
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    let mut rep = Report::default();
    let experiments: BTreeMap<&str, fn(&mut Report)> = BTreeMap::from([
        ("fig1", fig1 as fn(&mut Report)),
        ("fig2", fig2),
        ("fig3", fig3),
        ("fig4", fig4),
        ("fig5", fig5),
        ("table1", table1),
        ("example5", example5),
        ("analysis", analysis),
        ("sweep", sweep_experiment),
        ("ceilings", ceilings_experiment),
        ("breakdown", breakdown_experiment),
        ("erratum", erratum),
    ]);

    let order = [
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "table1",
        "example5",
        "analysis",
        "sweep",
        "ceilings",
        "breakdown",
        "erratum",
    ];
    for name in order {
        if want(name) {
            experiments[name](&mut rep);
            println!();
        }
    }
    rep.write();
    if rep.records.iter().any(|r| !r.matches) {
        std::process::exit(1);
    }
}
