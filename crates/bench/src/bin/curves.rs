//! Generate the E9 evaluation curves: deadline-miss ratio, blocking and
//! restarts as functions of CPU utilization and of data contention, per
//! protocol, averaged over seeded workloads.
//!
//! ```sh
//! cargo run --release -p rtdb-bench --bin curves            # full sweep
//! cargo run --release -p rtdb-bench --bin curves -- --quick # 3 seeds
//! ```
//!
//! Writes `results/curve_utilization.csv`, `results/curve_contention.csv`
//! and `results/curve_skew.csv` (one row per (x, protocol)) and prints
//! a digest. The shape to look for, per the paper's claims: PCP-DA's
//! blocking stays below RW-PCP/PCP everywhere, with zero restarts; the
//! abort-based protocols trade blocking for restarts that grow with
//! contention. The skew axis sweeps the write-heavy Zipfian-hotspot
//! family the early-release protocols (Bamboo, Brook-2PL) target; the
//! standard line-up includes them, so the same CSV shows blocking
//! protocols degrading with θ while early release trades it for
//! restarts.

use rtdb::prelude::*;
use rtdb::sim::sweep;
use std::fmt::Write as _;

struct Acc {
    runs: u32,
    miss_ratio: f64,
    total_blocking: u64,
    max_blocking: u64,
    restarts: u64,
    released: u64,
}

impl Acc {
    fn new() -> Self {
        Acc {
            runs: 0,
            miss_ratio: 0.0,
            total_blocking: 0,
            max_blocking: 0,
            restarts: 0,
            released: 0,
        }
    }
    fn add(&mut self, row: &sweep::ProtocolRow) {
        self.runs += 1;
        self.miss_ratio += row.miss_ratio;
        self.total_blocking += row.total_blocking;
        self.max_blocking = self.max_blocking.max(row.max_blocking);
        self.restarts += row.restarts as u64;
        self.released += row.released as u64;
    }
}

fn sweep_axis(
    label: &str,
    xs: &[f64],
    seeds: u64,
    make: impl Fn(f64, u64) -> WorkloadParams + Sync,
) -> String {
    let mut csv = String::from(
        "x,protocol,mean_miss_ratio,mean_blocking_per_1k,max_blocking,mean_restarts_per_1k\n",
    );
    println!("== {label} sweep ({seeds} seeds per point) ==");
    println!(
        "{:>6} {:<8} {:>12} {:>16} {:>13} {:>16}",
        label, "protocol", "miss-ratio", "blocking/1k", "max-blocking", "restarts/1k"
    );
    // The whole (x, seed) grid runs on a thread pool; results come back
    // in grid order, so the aggregation below (and thus the CSV and the
    // printed table) is identical to the former sequential nested loop.
    let grid: Vec<(f64, u64)> = xs
        .iter()
        .flat_map(|&x| (0..seeds).map(move |seed| (x, seed)))
        .collect();
    let results = sweep::compare_protocols_parallel(&grid, |&(x, seed)| {
        let set = make(x, seed).generate()?.set;
        Ok((set, SimConfig::with_horizon(10_000)))
    })
    .expect("sweep runs");

    let names: Vec<&'static str> = ProtocolKind::STANDARD.iter().map(|k| k.name()).collect();
    for (xi, &x) in xs.iter().enumerate() {
        let mut accs: Vec<Acc> = names.iter().map(|_| Acc::new()).collect();
        for rows in &results[xi * seeds as usize..(xi + 1) * seeds as usize] {
            for (acc, row) in accs.iter_mut().zip(rows) {
                acc.add(row);
            }
        }
        for (name, acc) in names.iter().zip(&accs) {
            let n = acc.runs as f64;
            let per_1k = |v: u64| v as f64 / (acc.released as f64 / 1000.0);
            let miss = acc.miss_ratio / n;
            let blocking = per_1k(acc.total_blocking);
            let restarts = per_1k(acc.restarts);
            println!(
                "{:>6.2} {:<8} {:>12.4} {:>16.1} {:>13} {:>16.2}",
                x, name, miss, blocking, acc.max_blocking, restarts
            );
            let _ = writeln!(
                csv,
                "{x:.2},{name},{miss:.6},{blocking:.3},{},{restarts:.4}",
                acc.max_blocking
            );
        }
        println!();
    }
    csv
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds = if quick { 3 } else { 10 };

    std::fs::create_dir_all("results").ok();

    // Axis 1: CPU utilization at moderate contention.
    let utils = [0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    let csv = sweep_axis("U", &utils, seeds, |u, seed| WorkloadParams {
        templates: 6,
        items: 16,
        target_utilization: u,
        hotspot_items: 3,
        hotspot_prob: 0.5,
        write_fraction: 0.4,
        seed: seed + 1,
        ..Default::default()
    });
    std::fs::write("results/curve_utilization.csv", csv).expect("results writable");

    // Axis 2: data contention (hotspot probability) at fixed utilization.
    let hots = [0.0, 0.2, 0.4, 0.6, 0.8, 0.95];
    let csv = sweep_axis("hot", &hots, seeds, |h, seed| WorkloadParams {
        templates: 6,
        items: 16,
        target_utilization: 0.6,
        hotspot_items: 3,
        hotspot_prob: h,
        write_fraction: 0.4,
        seed: seed + 101,
        ..Default::default()
    });
    std::fs::write("results/curve_contention.csv", csv).expect("results writable");

    // Axis 3: Zipfian skew over the write-heavy hotspot family (the
    // early-release regime — long transactions whose write locks a
    // blocking protocol pins across the body). θ = 0 falls back to the
    // legacy two-tier hotspot picker; rising θ concentrates the pool
    // until a handful of items carry most of the traffic.
    let thetas = [0.0, 0.3, 0.6, 0.9, 1.2];
    let csv = sweep_axis("θ", &thetas, seeds, |theta, seed| WorkloadParams {
        templates: 8,
        items: 16,
        target_utilization: 0.6,
        min_data_steps: 3,
        max_data_steps: 6,
        hotspot_items: 3,
        hotspot_prob: 0.5,
        zipf_theta: Some(theta),
        write_fraction: 0.9,
        hot_first: true,
        seed: seed + 201,
        ..Default::default()
    });
    std::fs::write("results/curve_skew.csv", csv).expect("results writable");

    println!(
        "CSV written to results/curve_utilization.csv, results/curve_contention.csv \
         and results/curve_skew.csv"
    );
}
