//! A Criterion-shaped micro-benchmark harness over `std::time`.
//!
//! The offline build environment has no crates.io access, so the
//! `benches/` targets (declared with `harness = false`) run on this
//! drop-in instead of Criterion. The API mirrors the subset of Criterion
//! the benches use — `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`/`criterion_main!`
//! — so they read identically.
//!
//! Measurement model: each benchmark warms up for [`WARMUP`] and then
//! takes [`BenchmarkGroup::sample_size`] samples, each running a calibrated
//! batch of iterations; the reported statistic is the mean ns/iteration of
//! the fastest half of the samples (robust against scheduler noise).
//! Set `BENCH_JSON=<path>` to also write the results as a JSON array of
//! `{id, mean_ns, iters}` records.

use rtdb_util::Json;
use std::time::{Duration, Instant};

/// Warm-up time per benchmark.
pub const WARMUP: Duration = Duration::from_millis(60);

/// Target measurement time per benchmark (split across samples).
pub const MEASURE: Duration = Duration::from_millis(240);

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark id, e.g. `lock_decision/read_request/PCP-DA`.
    pub id: String,
    /// Mean nanoseconds per iteration (fastest half of samples).
    pub mean_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

/// The harness entry point (drop-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

/// Names one benchmark within a group (drop-in for
/// `criterion::BenchmarkId`).
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// Runs the timed loops (drop-in for `criterion::Bencher`).
pub struct Bencher {
    sample_size: usize,
    result_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measure `routine`: warm up, calibrate a batch size, then sample.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up, also yielding a first latency estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Batch size so one sample costs MEASURE / sample_size.
        let sample_budget_ns = MEASURE.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((sample_budget_ns / est_ns).round() as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / batch as f64);
            total_iters += batch;
        }
        // Mean of the fastest half: the slow half is scheduler noise.
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let half = samples_ns.len().div_ceil(2);
        self.result_ns = samples_ns[..half].iter().sum::<f64>() / half as f64;
        self.iters = total_iters;
    }
}

/// A named group of benchmarks (drop-in for Criterion's group).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 24,
        }
    }

    /// Measure one stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        self.run_one(id.to_string(), 24, f);
    }

    fn run_one(&mut self, id: String, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size,
            result_ns: f64::NAN,
            iters: 0,
        };
        f(&mut b);
        let result = BenchResult {
            id,
            mean_ns: b.result_ns,
            iters: b.iters,
        };
        println!(
            "{:<56} {:>14} {:>10}",
            result.id,
            format_ns(result.mean_ns),
            format!("({} iters)", result.iters)
        );
        self.results.push(result);
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print the footer and honour `BENCH_JSON=<path>`.
    pub fn finalize(&self) {
        if let Ok(path) = std::env::var("BENCH_JSON") {
            let records: Vec<Json> = self
                .results
                .iter()
                .map(|r| {
                    Json::obj()
                        .set("id", r.id.as_str())
                        .set("mean_ns", r.mean_ns)
                        .set("iters", r.iters)
                })
                .collect();
            std::fs::write(&path, Json::Arr(records).pretty())
                .unwrap_or_else(|e| eprintln!("cannot write {path}: {e}"));
            eprintln!("bench results written to {path}");
        }
    }
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measure one benchmark of this group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(full, self.sample_size, f);
    }

    /// Measure one parameterized benchmark of this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}/{}", self.name, id.function, id.parameter);
        self.criterion
            .run_one(full, self.sample_size, |b| f(b, input));
    }

    /// End the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1.0e9 {
        format!("{:.3} s", ns / 1.0e9)
    } else if ns >= 1.0e6 {
        format!("{:.3} ms", ns / 1.0e6)
    } else if ns >= 1.0e3 {
        format!("{:.3} µs", ns / 1.0e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Drop-in for `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::harness::Criterion) {
            $($target(c);)+
        }
    };
}

/// Drop-in for `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        group.bench_with_input(BenchmarkId::new("f", "p"), &3u64, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2))
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| std::hint::black_box(1 + 1)));
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].id, "g/f/p");
        assert!(c.results()[0].mean_ns > 0.0);
        assert!(c.results()[1].iters > 0);
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(5.0).ends_with("ns"));
        assert!(format_ns(5.0e3).ends_with("µs"));
        assert!(format_ns(5.0e6).ends_with("ms"));
        assert!(format_ns(5.0e9).ends_with(" s"));
    }
}
