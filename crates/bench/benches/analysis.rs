//! Schedulability-analysis throughput: blocking sets, exact response-time
//! analysis and the breakdown-utilization search (a few thousand RTA
//! invocations per call).

use rtdb::prelude::*;
use rtdb_bench::harness::{BenchmarkId, Criterion};
use rtdb_bench::{criterion_group, criterion_main};

fn bench_analysis(c: &mut Criterion) {
    let small = rtdb_bench::standard_workload(11);
    let large = WorkloadParams {
        templates: 24,
        items: 64,
        target_utilization: 0.65,
        seed: 11,
        ..Default::default()
    }
    .generate()
    .expect("valid workload")
    .set;

    let mut group = c.benchmark_group("analysis");
    for (name, set) in [("6txn", &small), ("24txn", &large)] {
        group.bench_with_input(BenchmarkId::new("blocking_terms", name), set, |b, set| {
            b.iter(|| {
                std::hint::black_box(rtdb::analysis::blocking_terms(set, AnalysisProtocol::RwPcp))
            })
        });
        group.bench_with_input(BenchmarkId::new("rta", name), set, |b, set| {
            b.iter(|| std::hint::black_box(schedulable(set, AnalysisProtocol::PcpDa)))
        });
        group.bench_with_input(BenchmarkId::new("breakdown", name), set, |b, set| {
            b.iter(|| std::hint::black_box(breakdown_utilization(set, AnalysisProtocol::PcpDa)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
