//! Correctness-oracle throughput: serialization-graph construction, cycle
//! detection and the serial-replay check over a long history. The oracles
//! run after every property-test case, so their cost bounds test time.

use rtdb::prelude::*;
use rtdb_bench::harness::Criterion;
use rtdb_bench::{criterion_group, criterion_main};

fn long_run() -> (TransactionSet, RunResult) {
    let set = rtdb_bench::standard_workload(21);
    let mut protocol = PcpDa::new();
    let r = Engine::new(&set, SimConfig::with_horizon(20_000))
        .run(&mut protocol)
        .expect("run succeeds");
    (set, r)
}

fn bench_oracles(c: &mut Criterion) {
    let (set, run) = long_run();
    let committed = run.history.committed();
    assert!(committed > 100, "history too short to be meaningful");

    let mut group = c.benchmark_group("oracles");
    group.bench_function("serialization_graph_build", |b| {
        b.iter(|| std::hint::black_box(run.serialization_graph()))
    });
    let graph = run.serialization_graph();
    group.bench_function("cycle_detection", |b| {
        b.iter(|| std::hint::black_box(graph.find_cycle()))
    });
    group.bench_function("serial_replay", |b| {
        b.iter(|| {
            let outcome = run.replay_check(&set);
            assert!(outcome.is_serializable());
            std::hint::black_box(outcome)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_oracles);
criterion_main!(benches);
