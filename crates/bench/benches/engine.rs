//! Whole-engine simulation throughput: one full horizon of a standard and
//! a contended workload per protocol. These are the numbers behind every
//! E9/E10 sweep, so regressions here make the experiments slow.

use rtdb::prelude::*;
use rtdb_bench::harness::{BenchmarkId, Criterion};
use rtdb_bench::{criterion_group, criterion_main};

fn bench_engine(c: &mut Criterion) {
    let standard = rtdb_bench::standard_workload(5);
    let contended = rtdb_bench::contended_workload(5);

    let mut group = c.benchmark_group("engine_run");
    group.sample_size(20);
    for (workload_name, set) in [("standard", &standard), ("contended", &contended)] {
        // A representative subset of the registry line-up: the paper's
        // protocol, its main comparison target, and one abort-based one.
        for kind in [
            ProtocolKind::PcpDa,
            ProtocolKind::RwPcp,
            ProtocolKind::TwoPlHp,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{workload_name}_horizon5k"), kind.name()),
                set,
                |b, set| {
                    b.iter(|| {
                        let mut protocol = rtdb::sim::instantiate(kind);
                        let mut cfg = SimConfig::with_horizon(5_000);
                        cfg.resolve_deadlocks = true;
                        let r = Engine::new(set, cfg)
                            .run_any(&mut protocol)
                            .expect("run succeeds");
                        std::hint::black_box(r.metrics.deadline_misses())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_figure_examples(c: &mut Criterion) {
    // The worked examples are tiny; this tracks fixed engine overhead.
    let set = rtdb::paper::example4();
    c.bench_function("engine_run/example4_pcpda", |b| {
        b.iter(|| {
            let mut protocol = PcpDa::new();
            let r = Engine::new(&set, SimConfig::default())
                .run(&mut protocol)
                .expect("run succeeds");
            std::hint::black_box(r.history.committed())
        })
    });
}

criterion_group!(benches, bench_engine, bench_figure_examples);
criterion_main!(benches);
