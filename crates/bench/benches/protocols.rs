//! Lock-decision latency per protocol: how long one `request()` takes
//! against a representative lock-table state. This is the hot path of any
//! lock-based RTDBS scheduler.

use rtdb::prelude::*;
use rtdb_bench::harness::{BenchmarkId, Criterion};
use rtdb_bench::{criterion_group, criterion_main};
use rtdb_core::testkit::StaticView;

/// A view with a populated lock table: half the low-priority templates
/// hold read locks, one holds a write lock.
fn populated_view(set: &TransactionSet) -> StaticView<'_> {
    let mut view = StaticView::new(set);
    let n = set.len() as u32;
    for t in (n / 2)..n {
        let who = InstanceId::first(TxnId(t));
        let template = set.template(TxnId(t));
        if let Some(&item) = template.read_set().iter().next() {
            view.grant(who, item, LockMode::Read);
            view.record_read(who, item);
        }
        if let Some(&item) = template.write_set().iter().next() {
            view.grant(who, item, LockMode::Write);
        }
    }
    view
}

fn bench_decisions(c: &mut Criterion) {
    let set = rtdb_bench::standard_workload(3);
    let view = populated_view(&set);
    let requester = InstanceId::first(TxnId(0));
    let item = *set
        .template(TxnId(0))
        .access_set()
        .iter()
        .next()
        .expect("template accesses something");

    let mut group = c.benchmark_group("lock_decision");
    let mut protocols: Vec<Box<dyn Protocol>> = ProtocolKind::STANDARD
        .iter()
        .map(|&k| rtdb::sim::instantiate_boxed(k))
        .collect();
    for protocol in protocols.iter_mut() {
        group.bench_with_input(
            BenchmarkId::new("read_request", protocol.name()),
            &(),
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(protocol.request(
                        &view,
                        LockRequest {
                            who: requester,
                            item,
                            mode: LockMode::Read,
                        },
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decisions);
criterion_main!(benches);
