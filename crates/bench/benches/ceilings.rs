//! Sysceil maintenance cost under high read-lock fan-out.
//!
//! Isolates the quantity the incremental [`rtdb::cc::CeilingIndex`]
//! exists for: with `F` concurrent read holders spread over the item
//! space, how long does one `Sysceil` query take (a) through the index
//! and (b) through the from-scratch scan — and what does index
//! maintenance add to a grant/release transition. The scan grows with
//! the fan-out; the indexed query should not.

use rtdb::cc::{CeilingTable, LockTable};
use rtdb::prelude::*;
use rtdb_bench::harness::{BenchmarkId, Criterion};
use rtdb_bench::{criterion_group, criterion_main};

/// `templates` readers, each reading `items_per` items out of a pool of
/// `2 * templates`, plus one write step so every item carries a
/// non-dummy write ceiling. Distinct periods give distinct priorities,
/// hence many distinct ceiling levels in the index.
fn fanout_set(templates: u32, items_per: u32) -> TransactionSet {
    let pool = 2 * templates;
    let mut b = SetBuilder::new();
    for t in 0..templates {
        let mut steps = Vec::new();
        for k in 0..items_per {
            steps.push(Step::read(ItemId((t * items_per + k) % pool), 1));
        }
        steps.push(Step::write(ItemId(t % pool), 1));
        b = b.with(TransactionTemplate::new(
            format!("T{t}"),
            10 + t as u64,
            steps,
        ));
    }
    b.build().expect("fan-out set is valid")
}

/// Grant every template's read locks in both tables.
fn populate(set: &TransactionSet, tables: &mut [&mut LockTable]) {
    for t in 0..set.len() as u32 {
        let who = InstanceId::first(TxnId(t));
        for item in set.template(TxnId(t)).read_set() {
            for lt in tables.iter_mut() {
                lt.grant(who, item, LockMode::Read);
            }
        }
    }
}

fn bench_sysceil_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("sysceil_query");
    for &fanout in &[4u32, 16, 64] {
        let set = fanout_set(fanout, 4);
        let ceilings = CeilingTable::new(&set);
        let mut indexed = LockTable::with_index(&ceilings);
        let mut plain = LockTable::new();
        populate(&set, &mut [&mut indexed, &mut plain]);
        // The lowest-priority instance: its query must exclude only its
        // own locks, the common case on the LC2 path.
        let who = InstanceId::first(TxnId(fanout - 1));
        group.bench_with_input(BenchmarkId::new("indexed", fanout), &(), |b, _| {
            b.iter(|| std::hint::black_box(ceilings.pcpda_sysceil(&indexed, who)))
        });
        group.bench_with_input(BenchmarkId::new("scan", fanout), &(), |b, _| {
            b.iter(|| std::hint::black_box(ceilings.pcpda_sysceil_scan(&plain, who)))
        });
    }
    group.finish();
}

fn bench_lock_churn(c: &mut Criterion) {
    // Cost of lock-state transitions themselves: everyone else's read
    // locks stand while one instance repeatedly acquires its read set
    // and releases it wholesale. "indexed" pays the incremental
    // multiset updates; "plain" is the bare lock table.
    let mut group = c.benchmark_group("lock_churn");
    let set = fanout_set(32, 4);
    let ceilings = CeilingTable::new(&set);
    let churner = InstanceId::first(TxnId(0));
    let churn_items: Vec<ItemId> = set.template(TxnId(0)).read_set().iter().copied().collect();

    let mut indexed = LockTable::with_index(&ceilings);
    let mut plain = LockTable::new();
    populate(&set, &mut [&mut indexed, &mut plain]);
    indexed.release_all(churner);
    plain.release_all(churner);

    for (label, lt) in [("indexed", &mut indexed), ("plain", &mut plain)] {
        group.bench_with_input(BenchmarkId::new("grant_release_all", label), &(), |b, _| {
            b.iter(|| {
                for &item in &churn_items {
                    lt.grant(churner, item, LockMode::Read);
                }
                std::hint::black_box(lt.release_all(churner).len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sysceil_query, bench_lock_churn);
criterion_main!(benches);
