//! Experiment E7: Example 5's deadlock under the naive condition-(2)
//! protocol, and its absence under PCP-DA (Theorem 2).

use rtdb::paper;
use rtdb::prelude::*;
use rtdb::sim::TraceEvent;

fn inst(t: u32) -> InstanceId {
    InstanceId::first(TxnId(t))
}

/// Example 5 under Naive-DA ends in the circular wait the paper
/// constructs: T_H waits for T_L's read lock on x; T_L (inheriting P_H)
/// waits for T_H's read lock on y.
#[test]
fn example5_naive_da_deadlocks() {
    let set = paper::example5();
    let r = Engine::new(&set, SimConfig::default())
        .run(&mut NaiveDa::new())
        .unwrap();
    let (th, tl) = (inst(0), inst(1));

    match &r.outcome {
        RunOutcome::Deadlock(cycle) => {
            assert_eq!(cycle.len(), 2);
            assert!(cycle.contains(&th) && cycle.contains(&tl));
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
    assert!(r
        .trace
        .events()
        .iter()
        .any(|e| matches!(e, TraceEvent::DeadlockDetected { .. })));
    // Neither transaction committed.
    assert_eq!(r.history.committed(), 0);
}

/// The same arrival pattern under PCP-DA: T_H's read of y is denied up
/// front (LC3 fails on `y ∈ WriteSet(T*)`), T_L finishes, then T_H — no
/// deadlock, both commit.
#[test]
fn example5_pcpda_completes() {
    let set = paper::example5();
    let r = Engine::new(&set, SimConfig::default())
        .run(&mut PcpDa::new())
        .unwrap();
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.history.committed(), 2);
    // T_L commits first (T_H blocked behind it), serialization is clean.
    assert_eq!(r.history.commit_order()[0], inst(1));
    assert!(r.replay_check(&set).is_serializable());
    assert!(r.is_conflict_serializable());
}

/// Example 5 under every other ceiling protocol also completes —
/// deadlock freedom is the family property PCP-DA preserves.
#[test]
fn example5_other_ceiling_protocols_complete() {
    let set = paper::example5();
    let mut protocols: Vec<Box<dyn Protocol>> = vec![
        Box::new(RwPcp::new()),
        Box::new(Pcp::new()),
        Box::new(Ccp::new()),
    ];
    for p in protocols.iter_mut() {
        let r = Engine::new(&set, SimConfig::default())
            .run(p.as_mut())
            .unwrap();
        assert_eq!(
            r.outcome,
            RunOutcome::Completed,
            "{} deadlocked on Example 5",
            p.name()
        );
        assert_eq!(r.history.committed(), 2, "{}", p.name());
    }
}

/// Plain 2PL with priority inheritance deadlocks on Example 5 too (it has
/// no ceilings); with resolution enabled the victim restarts and both
/// eventually commit.
#[test]
fn example5_twopl_pi_deadlocks_and_resolves() {
    let set = paper::example5();

    let stopped = Engine::new(&set, SimConfig::default())
        .run(&mut TwoPlPi::new())
        .unwrap();
    assert!(matches!(stopped.outcome, RunOutcome::Deadlock(_)));

    let resolved = Engine::new(&set, SimConfig::default().resolving_deadlocks())
        .run(&mut TwoPlPi::new())
        .unwrap();
    assert_eq!(resolved.outcome, RunOutcome::Completed);
    assert_eq!(resolved.history.committed(), 2);
    assert!(
        resolved.history.aborts() >= 1,
        "a victim must have restarted"
    );
    assert!(resolved.replay_check(&set).is_serializable());
}

/// 2PL-HP cannot deadlock on Example 5: the higher-priority requester
/// aborts the holder instead of waiting.
#[test]
fn example5_twopl_hp_restarts_instead() {
    let set = paper::example5();
    let r = Engine::new(&set, SimConfig::default())
        .run(&mut TwoPlHp::new())
        .unwrap();
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.history.committed(), 2);
    assert!(r.history.aborts() >= 1);
    assert!(r.replay_check(&set).is_serializable());
}

/// PCP-DA never aborts anything, anywhere: its no-restart guarantee on
/// the paper's four example workloads.
#[test]
fn pcpda_never_restarts() {
    for set in [
        paper::example1(),
        paper::example3(),
        paper::example4(),
        paper::example5(),
    ] {
        let r = Engine::new(&set, SimConfig::default())
            .run(&mut PcpDa::new())
            .unwrap();
        assert_eq!(r.history.aborts(), 0);
        assert_eq!(r.metrics.total_restarts(), 0);
        assert_eq!(r.outcome, RunOutcome::Completed);
    }
}
