//! Property-based tests: the paper's theorems as executable invariants
//! over randomized periodic workloads (DESIGN.md §6).
//!
//! Every generated workload is pushed through the simulator under each
//! protocol, and the run is checked against:
//!
//! 1. **Serializability** (Theorem 3) — serial replay in commit order is
//!    value-identical and `SG(H)` is acyclic (CCP replays in topological
//!    order, as its early unlock decouples serialization from commit
//!    order);
//! 2. **Deadlock freedom** (Theorem 2) — ceiling protocols always
//!    complete;
//! 3. **Single blocking** (Theorem 1) — at most one distinct
//!    lower-priority blocker per instance under PCP-DA / RW-PCP / PCP;
//! 4. **No restarts** under PCP-DA (and all non-aborting protocols);
//! 5. **Blocking dominance** — PCP-DA's `Max_Sysceil` never exceeds
//!    RW-PCP's on the same workload (§6), and its total blocking is lower
//!    in aggregate over many workloads (§5);
//! 6. **Determinism** — identical seeds give identical runs.

use rtdb::prelude::*;
use rtdb_util::prop::forall;
use rtdb_util::Rng;

/// Engine runs are expensive; fewer cases than the unit-level suites.
const ENGINE_CASES: usize = 48;

fn arb_params(rng: &mut Rng) -> WorkloadParams {
    WorkloadParams {
        templates: rng.range_inclusive_usize(2, 6),
        items: rng.range_inclusive_usize(4, 12),
        target_utilization: rng.range_inclusive_u64(1, 7) as f64 / 10.0,
        min_period: 30,
        max_period: 300,
        min_data_steps: 1,
        max_data_steps: 4,
        write_fraction: rng.f64() * 0.8,
        hotspot_items: 3,
        hotspot_prob: rng.f64() * 0.9,
        // Exercise both item-popularity models and the read-only
        // template prefix: the theorems must hold regardless of mix.
        zipf_theta: rng.bool().then(|| rng.f64() * 1.2),
        partitions: 1,
        cross_partition_prob: 0.0,
        read_only_templates: rng.range_inclusive_usize(0, 2),
        hot_first: rng.bool(),
        seed: rng.next_u64(),
    }
}

fn run(set: &TransactionSet, protocol: &mut dyn Protocol, resolve: bool) -> RunResult {
    // Long enough for rare multi-instance interleavings to develop — a
    // deadlock variant once only surfaced past t=3000.
    let mut cfg = SimConfig::with_horizon(4_000);
    cfg.resolve_deadlocks = resolve;
    Engine::new(set, cfg).run(protocol).expect("run succeeds")
}

/// Theorems 1–3 for PCP-DA on arbitrary workloads.
#[test]
fn pcpda_theorems_hold() {
    forall(ENGINE_CASES, |rng| {
        let set = arb_params(rng).generate().unwrap().set;
        let r = run(&set, &mut PcpDa::new(), false);

        // Theorem 2: no deadlock, ever.
        assert_eq!(&r.outcome, &RunOutcome::Completed);
        // No restarts, ever.
        assert_eq!(r.history.aborts(), 0);
        // Theorem 3: serializable, commit order is a serialization order.
        let replay = r.replay_check(&set);
        assert!(replay.is_serializable(), "replay: {:?}", replay.violations);
        assert!(r.is_conflict_serializable());
        // Theorem 1: single blocking.
        assert!(
            r.metrics.max_distinct_lower_blockers() <= 1,
            "an instance was blocked by {} distinct lower-priority transactions",
            r.metrics.max_distinct_lower_blockers()
        );
    });
}

/// The same invariants for RW-PCP (the baseline's published
/// guarantees), plus blocking dominance of PCP-DA over RW-PCP.
#[test]
fn rwpcp_guarantees_and_dominance() {
    forall(ENGINE_CASES, |rng| {
        let set = arb_params(rng).generate().unwrap().set;
        let rw = run(&set, &mut RwPcp::new(), false);

        assert_eq!(&rw.outcome, &RunOutcome::Completed);
        assert_eq!(rw.history.aborts(), 0);
        assert!(rw.replay_check(&set).is_serializable());
        assert!(rw.metrics.max_distinct_lower_blockers() <= 1);

        let da = run(&set, &mut PcpDa::new(), false);
        // §6: ceiling push-down.
        assert!(da.metrics.max_sysceil <= rw.metrics.max_sysceil);
        // (No pointwise blocking/deadline-miss comparison here: once the
        // two schedules diverge, periodic phase shifts can move a few
        // ticks of blocking either way on one particular run. The
        // dominance claims are covered by `blocking_dominance_in_
        // aggregate` below, the BTS-subset analysis tests, and E9.)
        let _ = da;
    });
}

/// Original PCP and CCP: deadlock-free and serializable; CCP verified
/// through the topological-order replay (early unlock decouples
/// serialization order from commit order).
#[test]
fn pcp_and_ccp_serializable() {
    forall(ENGINE_CASES, |rng| {
        let set = arb_params(rng).generate().unwrap().set;

        let pcp = run(&set, &mut Pcp::new(), false);
        assert_eq!(&pcp.outcome, &RunOutcome::Completed);
        assert!(pcp.replay_check(&set).is_serializable());
        assert!(pcp.metrics.max_distinct_lower_blockers() <= 1);

        let ccp = run(&set, &mut Ccp::new(), false);
        assert_eq!(&ccp.outcome, &RunOutcome::Completed);
        assert!(ccp.is_conflict_serializable());
        let replay = ccp
            .replay_check_topological(&set)
            .expect("acyclic graph has a topological order");
        assert!(
            replay.is_serializable(),
            "CCP replay: {:?}",
            replay.violations
        );
        // (No pointwise blocking comparison with PCP: CCP's early unlock
        // improves the worst-case analysis, but a changed schedule can
        // shift individual runs either way.)
        assert_eq!(ccp.history.aborts(), 0);
    });
}

/// Abort-based baselines (2PL-HP, OCC-BC) and 2PL-PI with deadlock
/// resolution: always serializable, never blocked forever.
#[test]
fn twopl_baselines_serializable() {
    forall(ENGINE_CASES, |rng| {
        let set = arb_params(rng).generate().unwrap().set;

        let pi = run(&set, &mut TwoPlPi::new(), true);
        assert_eq!(&pi.outcome, &RunOutcome::Completed);
        assert!(pi.replay_check(&set).is_serializable());

        let hp = run(&set, &mut TwoPlHp::new(), false);
        assert_eq!(&hp.outcome, &RunOutcome::Completed);
        assert!(hp.replay_check(&set).is_serializable());

        let occ = run(&set, &mut OccBc::new(), false);
        assert_eq!(&occ.outcome, &RunOutcome::Completed);
        assert!(occ.replay_check(&set).is_serializable());
        assert!(occ.is_conflict_serializable());
        // OCC never blocks: zero blocking time everywhere.
        assert_eq!(occ.metrics.total_blocking().raw(), 0);
    });
}

/// Identical inputs give identical runs (the whole stack is
/// deterministic).
#[test]
fn runs_are_deterministic() {
    forall(ENGINE_CASES, |rng| {
        let set = arb_params(rng).generate().unwrap().set;
        let a = run(&set, &mut PcpDa::new(), false);
        let b = run(&set, &mut PcpDa::new(), false);
        assert_eq!(a.history.events(), b.history.events());
        assert_eq!(a.trace.events(), b.trace.events());
        assert_eq!(a.metrics.total_blocking(), b.metrics.total_blocking());
    });
}

/// Analytic blocking terms bound the measured lower-priority execution
/// whenever the analysis admits the workload (§9 soundness). RW-PCP
/// uses the paper's single-`C_L` bound; the repaired PCP-DA uses the
/// chain-closure bound (its erratum clauses admit chained waits below
/// `P_i`, so the paper's bound does not transfer — see
/// `rtdb::analysis::chain_set`).
#[test]
fn analytic_blocking_bound_sound() {
    forall(ENGINE_CASES, |rng| {
        let set = arb_params(rng).generate().unwrap().set;

        // RW-PCP: the paper's bound, sound as published.
        if schedulable(&set, AnalysisProtocol::RwPcp).rta_schedulable() {
            let b = rtdb::analysis::blocking_terms(&set, AnalysisProtocol::RwPcp);
            let r = run(&set, &mut RwPcp::new(), false);
            assert_eq!(r.metrics.deadline_misses(), 0);
            for m in r.metrics.instances() {
                assert!(
                    m.lower_exec <= b[m.id.txn.index()],
                    "RW-PCP: {} lower-exec {} > B_i {}",
                    m.id,
                    m.lower_exec,
                    b[m.id.txn.index()]
                );
            }
        }

        // Repaired PCP-DA: the chain-closure bound.
        if rtdb::analysis::schedulable_repaired_pcpda(&set).rta_schedulable() {
            let b = rtdb::analysis::repaired_blocking_terms(&set);
            let r = run(&set, &mut PcpDa::new(), false);
            assert_eq!(r.metrics.deadline_misses(), 0);
            for m in r.metrics.instances() {
                assert!(
                    m.lower_exec <= b[m.id.txn.index()],
                    "PCP-DA: {} lower-exec {} > B_i' {}",
                    m.id,
                    m.lower_exec,
                    b[m.id.txn.index()]
                );
            }
        }
    });
}

/// §5's dominance claim ("transaction blocking that happens under PCP-DA
/// must happen under RW-PCP"), tested in aggregate: summed over many
/// seeded workloads, PCP-DA's total blocking is strictly below RW-PCP's
/// (per-run phase drift cancels out; the structural advantage does not).
#[test]
fn blocking_dominance_in_aggregate() {
    let mut da_sum = 0u64;
    let mut rw_sum = 0u64;
    for seed in 0..40u64 {
        let set = WorkloadParams {
            seed,
            templates: 5,
            items: 10,
            target_utilization: 0.6,
            hotspot_prob: 0.6,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .set;
        da_sum += run(&set, &mut PcpDa::new(), false)
            .metrics
            .total_blocking()
            .raw();
        rw_sum += run(&set, &mut RwPcp::new(), false)
            .metrics
            .total_blocking()
            .raw();
    }
    assert!(
        da_sum < rw_sum,
        "aggregate blocking: PCP-DA {da_sum} !< RW-PCP {rw_sum}"
    );
}
