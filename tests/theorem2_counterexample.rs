//! An erratum discovered by this reproduction: **Theorem 2 (deadlock
//! freedom) fails for the paper's literal LC3.**
//!
//! The paper argues (§5) that LC3 need not check the Table 1 side
//! condition `DataRead(T*) ∩ WriteSet(T_i) = ∅` "because T_i will not
//! request a write-lock on the existing read-locked data items". That
//! claim is structurally guaranteed for LC2 (any item in `WriteSet(T_i)`
//! carries `Wceil ≥ P_i`, so its read lock would defeat `P_i > Sysceil`)
//! but not for LC3, which bounds only the requested item's own ceiling.
//!
//! The workload below (found by this repo's randomized testing, minimised
//! here) produces a circular wait under literal LC3:
//!
//! * `TL` (low priority) reads `a` — `Wceil(a) = P_TH` because `TH` writes
//!   `a` — and will later read `b`.
//! * `TH` (high priority) arrives, write-locks `c` (LC1, no ceiling),
//!   read-locks `m` via **literal LC3** (`P_TH > HPW(m)`,
//!   `m ∉ WriteSet(TL)`) although `DataRead(TL) ∩ WriteSet(TH) = {a}`,
//!   then requests `Wlock(a)` — denied by `TL`'s read lock (Case 2
//!   blocking, correct and mandatory).
//! * `TL` (inheriting `P_TH`) resumes and requests `Rlock(b)`: LC2 fails
//!   (`Sysceil = Wceil(m) ≥ P_TL` because `TH` read-holds `m`), LC3/LC4
//!   fail (`HPW(b) = P_TH > P_TL`) — `TL` waits on `TH`.
//!
//! `TH` waits for `TL` (lock conflict) and `TL` waits for `TH` (ceiling):
//! deadlock. The fixed protocol ([`PcpDa::new`]) applies the side
//! condition in LC3, denying `TH`'s read of `m` up front; `TH` then
//! blocks once on `TL` (single blocking intact), `TL` finishes, and both
//! commit.

use rtdb::prelude::*;

/// `TL`: Read(a), Read(b), compute. `TH`: Write(c), Read(m), Write(a).
/// `b` and `m` are written by `TH`-priority-adjacent templates so the
/// ceilings line up; the minimal 3-template version:
///
/// * `TH` (highest): `W(c) R(m) W(a)` — writes a ⇒ `Wceil(a) = P_TH`.
/// * `TM` (middle): `W(b) W(m)` — never runs (arrives late); it exists
///   only to give `b` and `m` their ceilings: `Wceil(b) = Wceil(m) = P_TM`.
/// * `TL` (lowest): `R(a) R(b) C`.
///
/// Wait — for the cycle we need `HPW(b) ≥ P_TL`... any writer suffices.
/// And LC3 for `TH`'s `R(m)` needs `P_TH > HPW(m) = P_TM` ✓ and
/// `m ∉ WriteSet(T*) = WriteSet(TL) = ∅` ✓.
fn counterexample_set() -> TransactionSet {
    let (a, b, c, m) = (ItemId(0), ItemId(1), ItemId(2), ItemId(3));
    SetBuilder::new()
        .with(
            TransactionTemplate::new(
                "TH",
                60,
                vec![Step::write(c, 1), Step::read(m, 1), Step::write(a, 1)],
            )
            .with_offset(2)
            .with_instances(1),
        )
        .with(
            // Ceiling donor for b and m; arrives far too late to run.
            TransactionTemplate::new("TM", 60, vec![Step::write(b, 1), Step::write(m, 1)])
                .with_offset(40)
                .with_instances(1),
        )
        .with(
            TransactionTemplate::new(
                "TL",
                60,
                vec![Step::read(a, 2), Step::read(b, 2), Step::compute(2)],
            )
            .with_instances(1),
        )
        .build()
        .unwrap()
}

#[test]
fn literal_lc3_deadlocks() {
    let set = counterexample_set();
    let r = Engine::new(&set, SimConfig::default())
        .run(&mut PcpDa::paper_literal())
        .unwrap();
    match &r.outcome {
        RunOutcome::Deadlock(cycle) => {
            assert_eq!(cycle.len(), 2);
            let txns: Vec<TxnId> = cycle.iter().map(|i| i.txn).collect();
            assert!(txns.contains(&TxnId(0)), "TH on the cycle");
            assert!(txns.contains(&TxnId(2)), "TL on the cycle");
        }
        other => panic!("literal LC3 should deadlock, got {other:?}"),
    }
}

#[test]
fn fixed_lc3_completes_with_single_blocking() {
    let set = counterexample_set();
    let r = Engine::new(&set, SimConfig::default())
        .run(&mut PcpDa::new())
        .unwrap();
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.history.committed(), 3);
    assert!(r.replay_check(&set).is_serializable());
    assert!(r.is_conflict_serializable());
    // TH is blocked exactly once, by TL.
    let th = r.metrics.instance(InstanceId::first(TxnId(0))).unwrap();
    assert_eq!(th.distinct_lower_blockers, vec![TxnId(2)]);
    // And PCP-DA's no-restart guarantee held.
    assert_eq!(r.history.aborts(), 0);
}

/// A full-size random workload on which the literal protocol deadlocks
/// (workload-generator seed 209) — kept as a regression test. The
/// deadlock was first observed on a seeded random workload; the pinned
/// seed tracks the in-repo generator.
#[test]
fn literal_lc3_deadlocks_on_random_workload() {
    let set = WorkloadParams {
        seed: 209,
        templates: 4,
        items: 8,
        target_utilization: 0.45,
        ..Default::default()
    }
    .generate()
    .unwrap()
    .set;

    let literal = Engine::new(&set, SimConfig::with_horizon(4_000))
        .run(&mut PcpDa::paper_literal())
        .unwrap();
    assert!(matches!(literal.outcome, RunOutcome::Deadlock(_)));

    let fixed = Engine::new(&set, SimConfig::with_horizon(4_000))
        .run(&mut PcpDa::new())
        .unwrap();
    assert_eq!(fixed.outcome, RunOutcome::Completed);
    assert_eq!(fixed.metrics.deadline_misses(), 0);
    assert!(fixed.replay_check(&set).is_serializable());
}

/// A further interleaving (found at horizon ~3000 during the E9 sweeps):
/// without the ceiling-capability refinement of clause (A), a read of a
/// *dummy-ceiling* item was denied, leaving the requester unable to reach
/// the hard-block state the commit-order guard recognises — a deadlock
/// between a mid-priority writer and a lower reader. Pinned here at full
/// size as a regression test.
#[test]
fn sweep_seed1_workload_completes() {
    let set = WorkloadParams {
        templates: 6,
        items: 16,
        target_utilization: 0.3,
        hotspot_items: 3,
        hotspot_prob: 0.5,
        write_fraction: 0.4,
        seed: 1,
        ..Default::default()
    }
    .generate()
    .unwrap()
    .set;
    let r = Engine::new(&set, SimConfig::with_horizon(10_000))
        .run(&mut PcpDa::new())
        .unwrap();
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.history.aborts(), 0);
    assert!(r.replay_check(&set).is_serializable());
    assert!(r.metrics.max_distinct_lower_blockers() <= 1);
}
