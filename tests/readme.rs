//! Keep the README's generated protocol table in sync with the
//! `ProtocolKind` registry it is derived from.

use rtdb::cc::ProtocolKind;

#[test]
fn readme_protocol_table_matches_registry() {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md readable");
    let begin = "<!-- protocol-table:begin -->";
    let end = "<!-- protocol-table:end -->";
    let start = readme.find(begin).expect("README has the begin marker") + begin.len();
    let stop = readme.find(end).expect("README has the end marker");
    assert_eq!(
        readme[start..stop].trim(),
        ProtocolKind::markdown_table().trim(),
        "README protocol table is stale — paste the output of \
         ProtocolKind::markdown_table() between the markers"
    );
}

#[test]
fn readme_names_every_protocol() {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md readable");
    for kind in ProtocolKind::ALL {
        assert!(readme.contains(kind.name()), "README omits {kind}");
    }
}
