//! Long-horizon stress: the full verification battery
//! ([`rtdb::sim::checks`]) over extended runs — thousands of instances
//! per run — where rare interleavings (multi-instance chains, wake-retry
//! races) have room to develop. Two protocol repairs in this repository
//! were first exposed only beyond t≈3000.

use rtdb::prelude::*;
use rtdb::sim::checks::{verify_run, Expectations};

fn stress(seed: u64, utilization: f64, hotspot: f64) -> TransactionSet {
    WorkloadParams {
        templates: 6,
        items: 12,
        target_utilization: utilization,
        hotspot_items: 3,
        hotspot_prob: hotspot,
        write_fraction: 0.45,
        seed,
        ..Default::default()
    }
    .generate()
    .expect("valid workload")
    .set
}

#[test]
fn pcpda_long_horizon_battery() {
    for seed in 0..6u64 {
        let set = stress(seed, 0.6, 0.7);
        let run = Engine::new(&set, SimConfig::with_horizon(20_000))
            .run(&mut PcpDa::new())
            .expect("run succeeds");
        let violations = verify_run(&set, &run, Expectations::pcp_da());
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        assert!(run.history.committed() > 200, "seed {seed} too small a run");
    }
}

#[test]
fn all_protocols_long_horizon_battery() {
    let set = stress(99, 0.55, 0.6);
    for &kind in ProtocolKind::STANDARD.iter() {
        // The registry metadata picks the invariant set: CCP installs on
        // early release, abort/deadlock-capable protocols restart.
        let expect = if kind.update_model() == rtdb::cc::UpdateModel::InstallOnEarlyRelease {
            Expectations::ccp()
        } else if kind.may_abort() || kind.may_deadlock() {
            Expectations::abort_based()
        } else {
            Expectations::pcp_da()
        };
        let mut cfg = SimConfig::with_horizon(15_000);
        cfg.resolve_deadlocks = kind.may_deadlock();
        let run = Engine::new(&set, cfg)
            .run_kind(kind)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let violations = verify_run(&set, &run, expect);
        assert!(violations.is_empty(), "{}: {violations:?}", kind.name());
    }
}

/// The literal protocol's failure rate is not a fluke: across many seeds
/// at a long horizon it deadlocks on a noticeable fraction of workloads,
/// while the repaired protocol completes every one of them.
#[test]
fn literal_protocol_fails_somewhere_repaired_never() {
    let mut literal_deadlocks = 0;
    for seed in 0..12u64 {
        let set = stress(seed, 0.5, 0.8);
        let lit = Engine::new(&set, SimConfig::with_horizon(8_000))
            .run(&mut PcpDa::paper_literal())
            .expect("run returns");
        if matches!(lit.outcome, RunOutcome::Deadlock(_)) {
            literal_deadlocks += 1;
        }
        let fixed = Engine::new(&set, SimConfig::with_horizon(8_000))
            .run(&mut PcpDa::new())
            .expect("run returns");
        assert_eq!(
            fixed.outcome,
            RunOutcome::Completed,
            "repaired protocol must never deadlock (seed {seed})"
        );
    }
    assert!(
        literal_deadlocks > 0,
        "expected the literal protocol to deadlock on at least one of 12 seeds"
    );
}
