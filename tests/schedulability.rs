//! Experiment E8: the §9 worst-case schedulability analysis, and its
//! agreement with simulation.

use rtdb::analysis::blocking::blocking_modes;
use rtdb::paper;
use rtdb::prelude::*;
use rtdb::types::Duration;

/// Example 3's analytical story: under RW-PCP `B_1 = C_2 = 5` (the writer
/// can block T1), T1's response exceeds its period; under PCP-DA
/// `BTS_1 = ∅`, so the set is schedulable.
#[test]
fn example3_analysis_matches_paper() {
    let set = paper::example3();

    let rw = schedulable(&set, AnalysisProtocol::RwPcp);
    assert_eq!(rw.blocking[0], Duration(5));
    assert!(!rw.rta_schedulable());
    assert!(!rw.liu_layland_schedulable());

    let da = schedulable(&set, AnalysisProtocol::PcpDa);
    assert_eq!(da.blocking[0], Duration(0));
    assert!(da.rta_schedulable());
    // Liu-Layland is only sufficient: T1 passes it, while the full set
    // (U = 0.9 > 2(2^0.5 - 1)) needs the exact test to be admitted.
    assert!(da.liu_layland[0]);
    assert!(!da.liu_layland_schedulable());

    // The BTS membership is explained by T2's *write* locks only —
    // exactly the conservatism PCP-DA removes.
    let modes = blocking_modes(&set, AnalysisProtocol::RwPcp, TxnId(1), TxnId(0));
    assert_eq!(modes, vec![LockMode::Write]);
}

/// The analysis is *sound* against the simulator: for every workload the
/// analysis admits, the measured lower-priority execution during an
/// instance's lifetime (the quantity `B_i` bounds) never exceeds the
/// analytic `B_i`, for both PCP-DA and RW-PCP.
///
/// Note the metric: an instance's raw lock-wait can legitimately exceed
/// `B_i` because *higher*-priority interference may overlap a blocked
/// window — that time is charged to interference, not blocking, in §9's
/// response-time equation.
#[test]
fn measured_blocking_never_exceeds_analytic_bound() {
    let mut workloads: Vec<TransactionSet> =
        vec![paper::example1(), paper::example3(), paper::example4()];
    for seed in 0..12 {
        workloads.push(
            WorkloadParams {
                seed,
                templates: 5,
                items: 10,
                target_utilization: 0.55,
                ..Default::default()
            }
            .generate()
            .unwrap()
            .set,
        );
    }

    let mut checked = 0;
    for (idx, set) in workloads.iter().enumerate() {
        for proto_kind in [AnalysisProtocol::PcpDa, AnalysisProtocol::RwPcp] {
            // The bound's theory assumes a schedulable (backlog-free)
            // system; skip combinations the analysis rejects. The
            // repaired PCP-DA needs the chain-closure bound.
            let b = match proto_kind {
                AnalysisProtocol::PcpDa => rtdb::analysis::repaired_blocking_terms(set),
                _ => rtdb::analysis::blocking_terms(set, proto_kind),
            };
            if !rtdb::analysis::schedulable_with_blocking(set, proto_kind, b.clone())
                .rta_schedulable()
            {
                continue;
            }
            checked += 1;
            let r = Engine::new(set, SimConfig::with_horizon(2_000))
                .run_kind(proto_kind.kind())
                .unwrap();
            for m in r.metrics.instances() {
                let bound = b[m.id.txn.index()];
                assert!(
                    m.lower_exec <= bound,
                    "workload {idx} {}: {} lower-exec {} > B_i {}",
                    proto_kind.name(),
                    m.id,
                    m.lower_exec,
                    bound
                );
            }
        }
    }
    assert!(checked >= 8, "too few schedulable combinations: {checked}");
}

/// `BTS_i(PCP-DA) ⊆ BTS_i(RW-PCP) ⊆ BTS_i(PCP)`-ish: the DA set is always
/// a subset of the RW set, and `B_i` never larger, across random
/// workloads (the paper's §9 comparison).
#[test]
fn bts_subset_on_random_workloads() {
    for seed in 0..25 {
        let set = WorkloadParams {
            seed,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .set;
        for t in set.templates() {
            let da: std::collections::BTreeSet<TxnId> =
                rtdb::analysis::bts(&set, AnalysisProtocol::PcpDa, t.id)
                    .into_iter()
                    .collect();
            let rw: std::collections::BTreeSet<TxnId> =
                rtdb::analysis::bts(&set, AnalysisProtocol::RwPcp, t.id)
                    .into_iter()
                    .collect();
            assert!(da.is_subset(&rw), "seed {seed}, {:?}", t.id);
            assert!(
                rtdb::analysis::worst_blocking(&set, AnalysisProtocol::PcpDa, t.id)
                    <= rtdb::analysis::worst_blocking(&set, AnalysisProtocol::RwPcp, t.id)
            );
        }
    }
}

/// Breakdown utilization (E11): PCP-DA's schedulability condition is
/// never worse than RW-PCP's, and strictly better on Example 3.
#[test]
fn breakdown_utilization_ordering() {
    let set = paper::example3();
    let (l_da, u_da) = breakdown_utilization(&set, AnalysisProtocol::PcpDa);
    let (l_rw, u_rw) = breakdown_utilization(&set, AnalysisProtocol::RwPcp);
    assert!(l_da > l_rw);
    assert!(u_da > u_rw);

    for seed in 0..15 {
        let set = WorkloadParams {
            seed,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .set;
        let (l_da, _) = breakdown_utilization(&set, AnalysisProtocol::PcpDa);
        let (l_rw, _) = breakdown_utilization(&set, AnalysisProtocol::RwPcp);
        let (l_pcp, _) = breakdown_utilization(&set, AnalysisProtocol::Pcp);
        assert!(l_da + 1e-9 >= l_rw, "seed {seed}: {l_da} < {l_rw}");
        assert!(l_rw + 1e-9 >= l_pcp, "seed {seed}: RW {l_rw} < PCP {l_pcp}");
    }
}

/// A schedulable verdict from the analysis means the simulator observes
/// no deadline misses (sufficiency of RTA on synchronous release).
#[test]
fn rta_schedulable_sets_meet_deadlines_in_simulation() {
    let mut checked = 0;
    for seed in 0..40 {
        let set = WorkloadParams {
            seed,
            templates: 4,
            items: 8,
            target_utilization: 0.45,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .set;
        let report = rtdb::analysis::schedulable_repaired_pcpda(&set);
        if !report.rta_schedulable() {
            continue;
        }
        checked += 1;
        let r = Engine::new(&set, SimConfig::with_horizon(4_000))
            .run(&mut PcpDa::new())
            .unwrap();
        assert_eq!(
            r.metrics.deadline_misses(),
            0,
            "seed {seed}: analysis said schedulable but simulation missed"
        );
    }
    assert!(checked >= 10, "too few schedulable sets sampled: {checked}");
}

/// CCP's hold-duration blocking bound (the paper's §2 claim that CCP
/// "reduces the worst case blocking time") is sound against the
/// simulator: on workloads its analysis admits, measured lower-priority
/// execution during an instance's lifetime stays within the bound.
#[test]
fn ccp_blocking_bound_sound() {
    let mut checked = 0;
    for seed in 0..20u64 {
        let set = WorkloadParams {
            seed,
            templates: 5,
            items: 10,
            target_utilization: 0.5,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .set;
        let b = rtdb::analysis::ccp_blocking_terms(&set);
        let report =
            rtdb::analysis::schedulable_with_blocking(&set, AnalysisProtocol::Pcp, b.clone());
        if !report.rta_schedulable() {
            continue;
        }
        checked += 1;
        let r = Engine::new(&set, SimConfig::with_horizon(3_000))
            .run(&mut Ccp::new())
            .unwrap();
        assert_eq!(r.metrics.deadline_misses(), 0, "seed {seed}");
        for m in r.metrics.instances() {
            assert!(
                m.lower_exec <= b[m.id.txn.index()],
                "seed {seed}: {} lower-exec {} > CCP B_i {}",
                m.id,
                m.lower_exec,
                b[m.id.txn.index()]
            );
        }
    }
    assert!(checked >= 8, "too few admitted workloads: {checked}");
}

/// The CCP bound never exceeds the PCP bound, and is strictly smaller on
/// some workloads (the "push-down" the convex profile buys).
#[test]
fn ccp_bound_dominates_pcp_bound_on_random_sets() {
    let mut strictly_better = 0;
    for seed in 0..30u64 {
        let set = WorkloadParams {
            seed,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .set;
        for t in set.templates() {
            let ccp = rtdb::analysis::ccp_worst_blocking(&set, t.id);
            let pcp = rtdb::analysis::worst_blocking(&set, AnalysisProtocol::Pcp, t.id);
            assert!(ccp <= pcp, "seed {seed} {:?}: {ccp} > {pcp}", t.id);
            if ccp < pcp {
                strictly_better += 1;
            }
        }
    }
    assert!(strictly_better > 0, "CCP bound never improved anything");
}
