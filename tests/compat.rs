//! Experiment E6: Table 1 — the PCP-DA lock compatibility table — checked
//! both as the pure decision function and *behaviourally* against the
//! live protocol through the simulator.

use rtdb::pcpda::compat::{compatible, render_table1, CompatInput};
use rtdb::prelude::*;

/// The four cells of Table 1 as the paper prints them.
#[test]
fn table1_cells() {
    let case = |held, requested, disjoint| {
        compatible(CompatInput {
            held,
            requested,
            holder_reads_disjoint_from_requester_writes: disjoint,
        })
    };
    // held Read:  read OK, write NOK
    assert!(case(LockMode::Read, LockMode::Read, true));
    assert!(case(LockMode::Read, LockMode::Read, false));
    assert!(!case(LockMode::Read, LockMode::Write, true));
    assert!(!case(LockMode::Read, LockMode::Write, false));
    // held Write: read OK* (side condition), write OK
    assert!(case(LockMode::Write, LockMode::Read, true));
    assert!(!case(LockMode::Write, LockMode::Read, false));
    assert!(case(LockMode::Write, LockMode::Write, true));
    assert!(case(LockMode::Write, LockMode::Write, false));
}

#[test]
fn table1_renders_as_printed() {
    let t = render_table1();
    assert!(t.contains("Read-lock"));
    assert!(t.contains("OK*"));
    assert!(t.contains("NOK"));
    assert!(t.contains("DataRead(T_L) ∩ WriteSet(T_H) = ∅"));
}

/// Behavioural check, cell by cell, through the simulator. Two
/// transactions with overlapping accesses; the lower-priority one arrives
/// first and locks, the higher-priority one then requests.
mod behavioural {
    use super::*;
    use rtdb::sim::TraceEvent;

    /// Build a 2-transaction set: L (lower priority) performs `l_steps`
    /// starting at 0; H (higher priority) performs `h_steps` starting at
    /// `h_offset`.
    fn duel(h_steps: Vec<Step>, l_steps: Vec<Step>, h_offset: u64) -> (TransactionSet, RunResult) {
        let set = SetBuilder::new()
            .with(
                TransactionTemplate::new("H", 50, h_steps)
                    .with_offset(h_offset)
                    .with_instances(1),
            )
            .with(TransactionTemplate::new("L", 50, l_steps).with_instances(1))
            .build()
            .unwrap();
        let r = Engine::new(&set, SimConfig::default())
            .run(&mut PcpDa::new())
            .unwrap();
        (set, r)
    }

    fn h_was_blocked(r: &RunResult) -> bool {
        r.trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Denied { who, .. } if who.txn == TxnId(0)))
    }

    /// Read held / read requested: shared — H proceeds.
    #[test]
    fn read_read_shares() {
        let x = ItemId(0);
        let (_, r) = duel(vec![Step::read(x, 1)], vec![Step::read(x, 3)], 1);
        assert!(!h_was_blocked(&r));
        assert_eq!(r.outcome, RunOutcome::Completed);
    }

    /// Read held / write requested: NOK — H blocks until L commits.
    #[test]
    fn read_write_blocks() {
        let x = ItemId(0);
        let (_, r) = duel(
            vec![Step::write(x, 1)],
            vec![Step::read(x, 3), Step::compute(1)],
            1,
        );
        assert!(h_was_blocked(&r));
        // H completes only after L (L commits first).
        assert_eq!(
            r.history.commit_order().first().map(|i| i.txn),
            Some(TxnId(1))
        );
    }

    /// Write held / read requested, side condition HOLDS (L read nothing
    /// H writes): OK* — H preempts and reads the pre-image.
    #[test]
    fn write_read_preempts_when_side_condition_holds() {
        let x = ItemId(0);
        let (set, r) = duel(
            vec![Step::read(x, 1)],
            vec![Step::write(x, 3), Step::compute(1)],
            1,
        );
        assert!(!h_was_blocked(&r));
        // H commits first: the dynamically adjusted order is H -> L.
        assert_eq!(
            r.history.commit_order().first().map(|i| i.txn),
            Some(TxnId(0))
        );
        assert!(r.replay_check(&set).is_serializable());
    }

    /// Write held / read requested, side condition FAILS (L already read
    /// y which H writes): H must block (it could not commit before L).
    #[test]
    fn write_read_blocks_when_side_condition_fails() {
        let x = ItemId(0);
        let y = ItemId(1);
        // L: Read(y) then Write(x)...; H: Read(x) then Write(y).
        let (set, r) = duel(
            vec![Step::read(x, 1), Step::write(y, 1)],
            vec![Step::read(y, 1), Step::write(x, 1), Step::compute(2)],
            2, // H arrives after L write-locked x
        );
        assert!(h_was_blocked(&r));
        assert_eq!(r.outcome, RunOutcome::Completed); // and no deadlock
        assert!(r.replay_check(&set).is_serializable());
    }

    /// Write held / write requested: blind writes coexist; commit order
    /// serializes them.
    #[test]
    fn write_write_coexists() {
        let x = ItemId(0);
        let (set, r) = duel(
            vec![Step::write(x, 1)],
            vec![Step::write(x, 3), Step::compute(1)],
            1,
        );
        assert!(!h_was_blocked(&r));
        assert_eq!(r.outcome, RunOutcome::Completed);
        // Both committed; the final value is the later committer's (L).
        assert_eq!(r.history.committed(), 2);
        assert!(r.replay_check(&set).is_serializable());
        let installs = r.history.install_order();
        let seq = &installs[&x];
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0].1.txn, TxnId(0)); // H commits/installs first
        assert_eq!(seq[1].1.txn, TxnId(1));
        let final_db = r.db.read(x);
        assert_eq!(final_db.writer.map(|w| w.txn), Some(TxnId(1)));
    }
}
