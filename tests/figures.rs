//! Experiments E1–E5: reproduce Figures 1–5 of the paper tick-for-tick.
//!
//! Each test runs the example's transaction set through the simulator
//! under the protocol the figure depicts and asserts the *exact* event
//! times the paper's narrative states: lock grants and denials, blocking
//! intervals, completions, deadline misses and `Max_Sysceil`.

use rtdb::paper;
use rtdb::prelude::*;
use rtdb::sim::TraceEvent;

fn inst(t: u32) -> InstanceId {
    InstanceId::first(TxnId(t))
}

fn run(set: &TransactionSet, protocol: &mut dyn Protocol) -> RunResult {
    Engine::new(set, SimConfig::default())
        .run(protocol)
        .expect("simulation runs")
}

fn completion(r: &RunResult, who: InstanceId) -> u64 {
    r.metrics
        .instance(who)
        .and_then(|m| m.completion)
        .unwrap_or_else(|| panic!("{who} did not complete"))
        .raw()
}

fn blocking(r: &RunResult, who: InstanceId) -> u64 {
    r.metrics.instance(who).unwrap().blocking.raw()
}

/// Figure 1 (Example 1, RW-PCP): T3 write-locks x at 0; T2 is
/// ceiling-blocked at 1 although y is free; T1 is conflict-blocked at 2;
/// T3 completes at 3; T1 then T2 finish by 5.
#[test]
fn figure1_example1_under_rwpcp() {
    let set = paper::example1();
    let (t1, t2, t3) = (inst(0), inst(1), inst(2));
    let r = run(&set, &mut RwPcp::new());

    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(completion(&r, t3), 3);
    assert_eq!(completion(&r, t1), 4);
    assert_eq!(completion(&r, t2), 5);

    // T2's ceiling blocking: denied at 1, resumed at 3 => 2 ticks blocked.
    assert_eq!(blocking(&r, t2), 2);
    // T1's conflict blocking: denied at 2, resumed at 3 => 1 tick.
    assert_eq!(blocking(&r, t1), 1);

    // The paper's point: T2 was blocked although y was completely free.
    let denied_t2 = r.trace.events().iter().any(|e| {
        matches!(e, TraceEvent::Denied { at, who, item, .. }
            if *who == t2 && *item == paper::Y && at.raw() == 1)
    });
    assert!(
        denied_t2,
        "T2 must be denied read-lock on free item y at t=1"
    );

    // Single blocking: each blocked transaction was blocked only by T3.
    for who in [t1, t2] {
        assert_eq!(
            r.metrics.instance(who).unwrap().distinct_lower_blockers,
            vec![TxnId(2)]
        );
    }
    assert!(r.replay_check(&set).is_serializable());
}

/// Figure 2 (Example 3, PCP-DA): T1 preempts T2's write locks and never
/// blocks; completions at 3, 8 (T1's instances) and 9 (T2).
#[test]
fn figure2_example3_under_pcpda() {
    let set = paper::example3();
    let mut protocol = PcpDa::new();
    let r = run(&set, &mut protocol);

    let t1a = InstanceId::new(TxnId(0), 0);
    let t1b = InstanceId::new(TxnId(0), 1);
    let t2 = inst(1);

    assert_eq!(completion(&r, t1a), 3);
    assert_eq!(completion(&r, t1b), 8);
    assert_eq!(completion(&r, t2), 9);
    assert_eq!(blocking(&r, t1a), 0);
    assert_eq!(blocking(&r, t1b), 0);
    assert_eq!(blocking(&r, t2), 0);
    assert_eq!(r.metrics.deadline_misses(), 0);

    // Narrative checks: T2 write-locks x at 0 (LC1); T1 read-locks x at 1
    // although x is write-locked (LC2); T2 write-locks y at 5 (LC1).
    let grants = protocol.grant_log();
    let lc = |who: InstanceId, item: ItemId| {
        grants
            .iter()
            .find(|(req, _)| req.who == who && req.item == item)
            .map(|(_, rule)| *rule)
            .unwrap_or_else(|| panic!("no grant for {who} on {item}"))
    };
    assert_eq!(lc(t2, paper::X), GrantRule::Lc1);
    assert_eq!(lc(t1a, paper::X), GrantRule::Lc2);
    assert_eq!(lc(t1a, paper::Y), GrantRule::Lc2);
    assert_eq!(lc(t2, paper::Y), GrantRule::Lc1);

    assert!(r.replay_check(&set).is_serializable());
    assert!(r.is_conflict_serializable());
}

/// Figure 3 (Example 3, RW-PCP): T1's first instance is blocked from 1 to
/// 5 (worst-case effective blocking 4), completes at 7 and misses its
/// deadline at 6; T2 completes at 5.
#[test]
fn figure3_example3_under_rwpcp() {
    let set = paper::example3();
    let r = run(&set, &mut RwPcp::new());

    let t1a = InstanceId::new(TxnId(0), 0);
    let t1b = InstanceId::new(TxnId(0), 1);
    let t2 = inst(1);

    assert_eq!(blocking(&r, t1a), 4);
    assert_eq!(completion(&r, t2), 5);
    assert_eq!(completion(&r, t1a), 7);
    assert!(!r.metrics.instance(t1a).unwrap().met_deadline());
    assert_eq!(r.metrics.deadline_misses(), 1);

    // The miss is logged at the deadline tick, 6.
    assert!(r.trace.events().iter().any(|e| matches!(
        e,
        TraceEvent::DeadlineMiss { at, who } if *who == t1a && at.raw() == 6
    )));

    // The second instance (arrives at 6) is unaffected and meets t=11.
    assert_eq!(completion(&r, t1b), 9);
    assert!(r.metrics.instance(t1b).unwrap().met_deadline());

    assert!(r.replay_check(&set).is_serializable());
}

/// Figure 4 (Example 4, PCP-DA): grants at the narrative's times — T3
/// read-locks z at 1 via LC4 and upgrades via LC1 at 2; T1 preempts T4 at
/// 4 via LC2; completions T3@3, T1@6, T4@9, T2@11; `Max_Sysceil = P2`,
/// dummy from t=9.
#[test]
fn figure4_example4_under_pcpda() {
    let set = paper::example4();
    let mut protocol = PcpDa::new();
    let r = run(&set, &mut protocol);

    let (t1, t2, t3, t4) = (inst(0), inst(1), inst(2), inst(3));
    assert_eq!(completion(&r, t3), 3);
    assert_eq!(completion(&r, t1), 6);
    assert_eq!(completion(&r, t4), 9);
    assert_eq!(completion(&r, t2), 11);
    for who in [t1, t2, t3, t4] {
        assert_eq!(blocking(&r, who), 0, "{who} must not block under PCP-DA");
    }

    let grants = protocol.grant_log();
    let rule_at = |who: InstanceId, item: ItemId| {
        grants
            .iter()
            .find(|(req, _)| req.who == who && req.item == item)
            .map(|(_, r)| *r)
            .unwrap()
    };
    // Narrative: T4 read-locks y at 0 (LC2, nothing locked); T3 read-locks
    // z at 1 via LC4; T3 write-locks z at 2 via LC1; T4 write-locks x via
    // LC1; T1 read-locks x via LC2; T2 write-locks y via LC1.
    assert_eq!(rule_at(t4, paper::Y), GrantRule::Lc2);
    assert_eq!(rule_at(t3, paper::Z), GrantRule::Lc4);
    assert_eq!(rule_at(t1, paper::X), GrantRule::Lc2);
    assert_eq!(rule_at(t2, paper::Y), GrantRule::Lc1);

    // Max_Sysceil stays at P2 (Wceil(y)) while y is read-locked, and
    // drops to dummy at t=9.
    assert_eq!(
        r.trace.max_system_ceiling(),
        set.priority_of(TxnId(1)).as_ceiling()
    );
    let last = r.trace.ceiling_samples().last().copied().unwrap();
    assert_eq!(last, (Tick(9), Ceiling::Dummy));

    assert!(r.replay_check(&set).is_serializable());
}

/// Figure 5 (Example 4, RW-PCP): T3 is ceiling-blocked for 4 ticks, T1
/// conflict-blocked for 1; completions T4@5, T1@7, T3@9, T2@11;
/// `Max_Sysceil` reaches P1 (Aceil(x)) while T4 write-holds x.
#[test]
fn figure5_example4_under_rwpcp() {
    let set = paper::example4();
    let r = run(&set, &mut RwPcp::new());

    let (t1, t2, t3, t4) = (inst(0), inst(1), inst(2), inst(3));
    assert_eq!(completion(&r, t4), 5);
    assert_eq!(completion(&r, t1), 7);
    assert_eq!(completion(&r, t3), 9);
    assert_eq!(completion(&r, t2), 11);

    // "The effective blocking times of T1 and T3 blocked by T4 are 1 and
    // 4 time units respectively."
    assert_eq!(blocking(&r, t1), 1);
    assert_eq!(blocking(&r, t3), 4);
    assert_eq!(
        r.metrics.instance(t3).unwrap().distinct_lower_blockers,
        vec![TxnId(3)]
    );

    // T3's denial at t=1 is a *ceiling* blocking: the item z it asked for
    // is entirely free.
    assert!(r.trace.events().iter().any(|e| matches!(
        e,
        TraceEvent::Denied { at, who, item, .. }
            if *who == t3 && *item == paper::Z && at.raw() == 1
    )));

    // Max_Sysceil under RW-PCP climbs to P1 = Aceil(x).
    assert_eq!(
        r.trace.max_system_ceiling(),
        set.priority_of(TxnId(0)).as_ceiling()
    );

    assert!(r.replay_check(&set).is_serializable());
}

/// The Max_Sysceil push-down claim of §6: on Example 4, PCP-DA's maximum
/// system ceiling (P2) is strictly below RW-PCP's (P1).
#[test]
fn example4_ceiling_pushdown_pcpda_below_rwpcp() {
    let set = paper::example4();
    let da = run(&set, &mut PcpDa::new());
    let rw = run(&set, &mut RwPcp::new());
    assert!(da.trace.max_system_ceiling() < rw.trace.max_system_ceiling());
}

/// Under PCP (single absolute ceilings) Example 3 behaves no better than
/// RW-PCP for T1 — the read/write semantics cannot help a pure-reader.
#[test]
fn example3_under_original_pcp_also_blocks_t1() {
    let set = paper::example3();
    let r = run(&set, &mut Pcp::new());
    let t1a = InstanceId::new(TxnId(0), 0);
    assert!(blocking(&r, t1a) >= 4);
    assert!(r.replay_check(&set).is_serializable());
}
