//! Use the §9 analysis as an *admission controller*: decide offline which
//! protocol can guarantee a workload's deadlines, without simulating.
//!
//! Walks a family of workloads with a growing share of write-heavy,
//! low-priority transactions and reports, per protocol, the Liu–Layland
//! verdict, the exact response-time verdict and the breakdown
//! utilization. The crossover — workloads PCP-DA admits but RW-PCP
//! rejects — is the paper's schedulability argument made concrete.
//!
//! ```sh
//! cargo run --example admission_control
//! ```

use rtdb::prelude::*;

/// A parametric workload: one fast reader transaction and `writers`
/// lower-priority writers that each update the reader's items.
fn workload(writers: usize, writer_len: u64) -> TransactionSet {
    let mut b = SetBuilder::new();
    // The fast, high-priority reader (the paper's T1 shape).
    b.add(TransactionTemplate::new(
        "reader",
        20,
        vec![
            Step::read(ItemId(0), 1),
            Step::read(ItemId(1), 1),
            Step::compute(1),
        ],
    ));
    for w in 0..writers {
        let item = ItemId((w % 2) as u32);
        b.add(TransactionTemplate::new(
            format!("writer-{w}"),
            120 + 40 * w as u64,
            vec![Step::write(item, writer_len), Step::compute(writer_len)],
        ));
    }
    b.build_rate_monotonic().expect("valid workload")
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "admit"
    } else {
        "REJECT"
    }
}

fn main() {
    println!(
        "{:>7} {:>10} | {:>12} {:>12} | {:>12} {:>12} | {:>9} {:>9}",
        "writers",
        "writer-len",
        "PCP-DA (LL)",
        "PCP-DA (RTA)",
        "RW-PCP (LL)",
        "RW-PCP (RTA)",
        "bu(DA)",
        "bu(RW)"
    );
    for writers in [1usize, 2, 3] {
        for writer_len in [2u64, 4, 6, 8] {
            let set = workload(writers, writer_len);
            let da = schedulable(&set, AnalysisProtocol::PcpDa);
            let rw = schedulable(&set, AnalysisProtocol::RwPcp);
            let (_, bu_da) = breakdown_utilization(&set, AnalysisProtocol::PcpDa);
            let (_, bu_rw) = breakdown_utilization(&set, AnalysisProtocol::RwPcp);
            println!(
                "{:>7} {:>10} | {:>12} {:>12} | {:>12} {:>12} | {:>9.3} {:>9.3}",
                writers,
                writer_len,
                verdict(da.liu_layland_schedulable()),
                verdict(da.rta_schedulable()),
                verdict(rw.liu_layland_schedulable()),
                verdict(rw.rta_schedulable()),
                bu_da,
                bu_rw,
            );

            // Trust but verify: simulate whatever the analysis admits.
            if da.rta_schedulable() {
                let run = Engine::new(&set, SimConfig::with_horizon(5_000))
                    .run(&mut PcpDa::new())
                    .expect("run succeeds");
                assert_eq!(run.metrics.deadline_misses(), 0, "analysis was unsound!");
            }
        }
    }
    println!("\nEvery workload the reader-side analysis admits for PCP-DA was");
    println!("simulated and met all deadlines; RW-PCP must reject earlier because");
    println!("its blocking term also counts pure writers (BTS superset, paper §9).");
}
