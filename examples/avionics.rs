//! An avionics-flavoured hard real-time database — the kind of
//! mission-critical workload the paper's introduction motivates
//! ("avionics systems, aerospace systems, robotics and defence systems").
//!
//! Periodic transactions share a memory-resident store of flight state:
//!
//! * `attitude-ctl` (50 Hz analogue): reads gyro/accel, writes the
//!   control-surface commands — the highest-priority, hardest deadline.
//! * `nav-update` (10 Hz): fuses GPS + airspeed into the nav solution.
//! * `sensor-io` (25 Hz): refreshes raw sensor items.
//! * `telemetry` (2 Hz): scans everything for the downlink frame.
//!
//! Under RW-PCP, `attitude-ctl` can be blocked by `telemetry`'s long
//! scan-and-log transaction *merely because telemetry writes a log item
//! whose ceiling is high*; under PCP-DA writes never raise ceilings, so
//! the control loop's analytic worst-case blocking shrinks. This example
//! prints both analyses and validates them with a simulation.
//!
//! ```sh
//! cargo run --example avionics
//! ```

use rtdb::prelude::*;

fn main() {
    // Data items.
    let gyro = ItemId(0);
    let accel = ItemId(1);
    let gps = ItemId(2);
    let airspeed = ItemId(3);
    let nav = ItemId(4);
    let surfaces = ItemId(5);
    let frame = ItemId(6);

    let set = SetBuilder::new()
        .with(TransactionTemplate::new(
            "attitude-ctl",
            20, // shortest period -> highest rate-monotonic priority
            vec![
                Step::read(gyro, 1),
                Step::read(accel, 1),
                Step::read(nav, 1),
                Step::write(surfaces, 1),
            ],
        ))
        .with(TransactionTemplate::new(
            "sensor-io",
            40,
            vec![
                Step::write(gyro, 1),
                Step::write(accel, 1),
                Step::write(airspeed, 1),
                Step::write(gps, 2),
            ],
        ))
        .with(TransactionTemplate::new(
            "nav-update",
            100,
            vec![
                Step::read(gps, 2),
                Step::read(airspeed, 1),
                Step::write(nav, 2),
                Step::compute(3),
            ],
        ))
        .with(TransactionTemplate::new(
            "telemetry",
            500,
            vec![
                Step::read(nav, 2),
                Step::read(surfaces, 2),
                Step::read(gyro, 1),
                Step::write(frame, 3),
                Step::compute(4),
            ],
        ))
        .build_rate_monotonic()
        .expect("valid avionics set");

    println!("== avionics transaction set ==");
    for t in set.templates() {
        println!(
            "  {:13} period={:4} wcet={:2} U={:.3}",
            t.name,
            t.period,
            t.wcet(),
            t.utilization()
        );
    }
    println!("  total U = {:.3}\n", set.total_utilization());

    // Analytic comparison: who can block the control loop?
    println!("== worst-case blocking B_i (analysis, paper §9) ==");
    println!(
        "  {:13} {:>8} {:>8} {:>8}",
        "transaction", "PCP-DA", "RW-PCP", "PCP"
    );
    for t in set.templates() {
        let b = |p| rtdb::analysis::worst_blocking(&set, p, t.id).raw();
        println!(
            "  {:13} {:>8} {:>8} {:>8}",
            t.name,
            b(AnalysisProtocol::PcpDa),
            b(AnalysisProtocol::RwPcp),
            b(AnalysisProtocol::Pcp)
        );
    }

    let (_, u_da) = breakdown_utilization(&set, AnalysisProtocol::PcpDa);
    let (_, u_rw) = breakdown_utilization(&set, AnalysisProtocol::RwPcp);
    println!(
        "\n  breakdown utilization: PCP-DA {:.3} vs RW-PCP {:.3}\n",
        u_da, u_rw
    );

    // Simulate two telemetry periods under both protocols.
    println!("== simulation (horizon 1000) ==");
    println!(
        "  {:8} {:>10} {:>14} {:>14} {:>12}",
        "protocol", "misses", "ctl max block", "tot blocking", "max sysceil"
    );
    for kind in [
        ProtocolKind::PcpDa,
        ProtocolKind::RwPcp,
        ProtocolKind::Pcp,
        ProtocolKind::Ccp,
    ] {
        let name = kind.name();
        let run = Engine::new(&set, SimConfig::with_horizon(1_000))
            .run_kind(kind)
            .expect("run succeeds");
        let ctl_max_block = run
            .metrics
            .max_blocking_by_template()
            .get(&TxnId(0))
            .copied()
            .unwrap_or(rtdb::types::Duration::ZERO);
        println!(
            "  {:8} {:>10} {:>14} {:>14} {:>12}",
            name,
            run.metrics.deadline_misses(),
            ctl_max_block,
            run.metrics.total_blocking(),
            run.metrics.max_sysceil.to_string()
        );
        assert!(run.is_conflict_serializable());
    }
    println!("\nPCP-DA keeps the 50 Hz control loop free of write-induced blocking.");
}
