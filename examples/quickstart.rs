//! Quickstart: define a periodic transaction set, check its
//! schedulability analytically, simulate it under PCP-DA, and print the
//! timeline.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rtdb::prelude::*;
use rtdb::sim::gantt;

fn main() {
    // A tiny hard real-time database workload:
    //  * `sensor` (period 10): refreshes two sensor readings.
    //  * `display` (period 20): reads both readings plus a setpoint.
    //  * `logger` (period 40): scans everything into a log record.
    let readings = [ItemId(0), ItemId(1)];
    let setpoint = ItemId(2);
    let log = ItemId(3);

    let set = SetBuilder::new()
        .with(TransactionTemplate::new(
            "sensor",
            10,
            vec![Step::write(readings[0], 1), Step::write(readings[1], 1)],
        ))
        .with(TransactionTemplate::new(
            "display",
            20,
            vec![
                Step::read(readings[0], 1),
                Step::read(readings[1], 1),
                Step::read(setpoint, 1),
                Step::compute(1),
            ],
        ))
        .with(TransactionTemplate::new(
            "logger",
            40,
            vec![
                Step::read(readings[0], 1),
                Step::read(setpoint, 1),
                Step::write(log, 2),
                Step::compute(2),
            ],
        ))
        .build_rate_monotonic()
        .expect("valid transaction set");

    println!("== workload ==");
    for t in set.templates() {
        println!(
            "  {:8} period={:3} wcet={:2} priority={}",
            t.name,
            t.period,
            t.wcet(),
            set.priority_of(t.id)
        );
    }
    println!("  total utilization: {:.3}\n", set.total_utilization());

    // 1. Admission control before running anything (paper §9).
    let report = schedulable(&set, AnalysisProtocol::PcpDa);
    println!("== schedulability analysis (PCP-DA) ==");
    for t in set.templates() {
        println!(
            "  {:8} B_i={:2}  response={:?}",
            t.name,
            report.blocking[t.id.index()],
            report.response_of(t.id)
        );
    }
    println!("  RTA schedulable: {}\n", report.rta_schedulable());

    // 2. Simulate one hyperperiod under PCP-DA.
    let mut protocol = PcpDa::new();
    let run = Engine::new(&set, SimConfig::with_horizon(40))
        .run(&mut protocol)
        .expect("simulation succeeds");

    println!("== simulation (PCP-DA, one hyperperiod) ==");
    println!("{}", gantt::render(&set, &run.trace));
    println!(
        "deadline misses: {}   total blocking: {}   restarts: {}",
        run.metrics.deadline_misses(),
        run.metrics.total_blocking(),
        run.metrics.total_restarts()
    );

    // 3. Every run can be verified end-to-end.
    assert!(run.replay_check(&set).is_serializable());
    assert!(run.is_conflict_serializable());
    println!("serializability verified (serial replay + acyclic SG).");
}
