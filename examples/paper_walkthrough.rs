//! Walk through the paper's worked examples (Examples 1, 3, 4 and 5),
//! rendering each execution as an ASCII timeline — the textual versions
//! of Figures 1–5 plus the Example 5 deadlock.
//!
//! ```sh
//! cargo run --example paper_walkthrough
//! ```

use rtdb::paper;
use rtdb::prelude::*;
use rtdb::sim::gantt;

fn show(title: &str, set: &TransactionSet, protocol: &mut dyn Protocol) {
    let run = Engine::new(set, SimConfig::default())
        .run(protocol)
        .expect("run succeeds");
    println!("--- {title} ({}) ---", run.protocol);
    println!("{}", gantt::render(set, &run.trace));
    match &run.outcome {
        RunOutcome::Completed => {
            println!(
                "completed; misses={} total-blocking={} Max_Sysceil={}",
                run.metrics.deadline_misses(),
                run.metrics.total_blocking(),
                run.metrics.max_sysceil
            );
        }
        RunOutcome::Deadlock(cycle) => {
            let names: Vec<String> = cycle.iter().map(|i| i.to_string()).collect();
            println!("DEADLOCK among {}", names.join(" <-> "));
        }
    }
    println!();
}

fn main() {
    println!("# Example 1 — unnecessary blocking under RW-PCP (Figure 1)\n");
    show("Figure 1", &paper::example1(), &mut RwPcp::new());

    println!("# Example 3 — PCP-DA avoids the conflict blocking (Figures 2 vs 3)\n");
    show("Figure 2", &paper::example3(), &mut PcpDa::new());
    show("Figure 3", &paper::example3(), &mut RwPcp::new());

    println!("# Example 4 — LC4 in action, ceiling push-down (Figures 4 vs 5)\n");
    show("Figure 4", &paper::example4(), &mut PcpDa::new());
    show("Figure 5", &paper::example4(), &mut RwPcp::new());

    println!("# Example 5 — condition (2) alone deadlocks; PCP-DA does not\n");
    show("Example 5 naive", &paper::example5(), &mut NaiveDa::new());
    show("Example 5 PCP-DA", &paper::example5(), &mut PcpDa::new());

    println!("# Table 1 — the PCP-DA lock compatibility table\n");
    println!("{}", rtdb::pcpda::compat::render_table1());
}
