//! Compare every protocol on randomized workloads at increasing data
//! contention — a miniature of the repository's E9 experiment.
//!
//! ```sh
//! cargo run --release --example protocol_comparison
//! ```

use rtdb::prelude::*;
use rtdb::sim::sweep;

fn main() {
    for &hotspot_prob in &[0.2, 0.5, 0.8] {
        let workload = WorkloadParams {
            templates: 6,
            items: 16,
            target_utilization: 0.6,
            hotspot_items: 3,
            hotspot_prob,
            write_fraction: 0.4,
            seed: 7,
            ..Default::default()
        }
        .generate()
        .expect("valid workload");

        println!(
            "== contention {:.0}% (U={:.2}, {} templates) ==",
            hotspot_prob * 100.0,
            workload.set.total_utilization(),
            workload.set.len()
        );
        let mut protocols = sweep::standard_protocols();
        let rows = compare_protocols(
            &workload.set,
            &SimConfig::with_horizon(20_000),
            &mut protocols,
        )
        .expect("sweep succeeds");
        println!("{}", sweep::format_table(&rows));
    }
    println!("note: identical workloads and arrival patterns per table;");
    println!("PCP-DA never blocks more than RW-PCP and never restarts.");
}
