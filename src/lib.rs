//! # rtdb — a hard real-time database kit around PCP-DA
//!
//! This crate is the façade of the workspace reproducing
//! *"A Priority Ceiling Protocol with Dynamic Adjustment of Serialization
//! Order"* (Lam, Son, Hung; ICDE 1997). It re-exports:
//!
//! * [`pcpda`] — the paper's protocol (locking conditions LC1–LC4,
//!   crate `rtdb-cc`);
//! * [`baselines`] — RW-PCP, original PCP, CCP, 2PL-PI, 2PL-HP and the
//!   deliberately deadlock-prone Naive-DA of Example 5;
//! * [`sim`] — the deterministic discrete-event simulator (single CPU,
//!   priority inheritance, periodic transactions) that reproduces the
//!   paper's Figures 1–5 tick-for-tick;
//! * [`rt`] — the multi-threaded runtime (crate `rtdb-rt`): the same
//!   protocols executed on real OS threads through a parking lock
//!   manager, with closed-loop job execution, an asynchronous admission
//!   front-end for open-loop arrivals with runtime deadline tracking
//!   (slack-aware admission, per-tenant fairness budgets), and latency
//!   histograms;
//! * [`net`] — the TCP service edge (crate `rtdb-net`): a non-blocking
//!   event loop speaking a length-prefixed binary wire protocol,
//!   bridging socket clients onto the admission front-end;
//! * [`analysis`] — the §9 worst-case schedulability analysis (`BTS_i`,
//!   `B_i`, Liu–Layland with blocking, response-time analysis, breakdown
//!   utilization);
//! * [`storage`] — the memory-resident store with private workspaces,
//!   plus the serializability oracles (serialization graph + serial
//!   replay);
//! * [`cc`] — the protocol-agnostic kernel (crate `rtdb-core`): the
//!   [`cc::ProtocolFor`]/[`cc::Protocol`] traits, the
//!   [`cc::ProtocolKind`] registry, lock table, ceilings, priority
//!   inheritance, wait-for graph;
//! * [`types`] — ids, discrete time, priorities, transaction templates.
//!
//! ## Quick start
//!
//! ```
//! use rtdb::prelude::*;
//!
//! // Two periodic transactions: a fast reader and a slow writer
//! // (the paper's Example 3).
//! let set = SetBuilder::new()
//!     .with(TransactionTemplate::new("reader", 5, vec![
//!         Step::read(ItemId(0), 1), Step::read(ItemId(1), 1),
//!     ]).with_offset(1).with_instances(2))
//!     .with(TransactionTemplate::new("writer", 10, vec![
//!         Step::write(ItemId(0), 1), Step::compute(2),
//!         Step::write(ItemId(1), 1), Step::compute(1),
//!     ]).with_instances(1))
//!     .build().unwrap();
//!
//! // Simulate under PCP-DA: the reader is never blocked.
//! let mut protocol = PcpDa::new();
//! let run = Engine::new(&set, SimConfig::default()).run(&mut protocol).unwrap();
//! assert_eq!(run.metrics.deadline_misses(), 0);
//! assert!(run.replay_check(&set).is_serializable());
//!
//! // And the analysis agrees before running anything:
//! let report = rtdb::analysis::schedulable(&set, AnalysisProtocol::PcpDa);
//! assert!(report.rta_schedulable());
//! ```

#![forbid(unsafe_code)]

pub mod paper;

pub use rtdb_analysis as analysis;
pub use rtdb_baselines as baselines;
pub use rtdb_cc as pcpda;
pub use rtdb_core as cc;
pub use rtdb_net as net;
pub use rtdb_rt as rt;
pub use rtdb_sim as sim;
pub use rtdb_storage as storage;
pub use rtdb_types as types;

/// The most commonly used items in one import.
pub mod prelude {
    pub use rtdb_analysis::{breakdown_utilization, schedulable, AnalysisProtocol};
    pub use rtdb_baselines::{Ccp, NaiveDa, OccBc, Pcp, RwPcp, TwoPlHp, TwoPlPi};
    pub use rtdb_cc::{GrantRule, PcpDa};
    pub use rtdb_core::{
        AbortBreakdown, AbortReason, Decision, EngineView, LockRequest, Protocol, ProtocolFor,
        ProtocolKind,
    };
    pub use rtdb_net::{serve, NetClient, NetConfig};
    pub use rtdb_rt::{
        job_list, run_front, AdmissionPolicy, CombinerStats, FairnessConfig, FrontConfig,
        JobRequest, LatencyHistogram, ManagerKind, RtConfig, RtResult, TenantStats,
    };
    pub use rtdb_sim::{
        compare_protocols, Engine, MetricsReport, RunOutcome, RunResult, SimConfig, WorkloadParams,
    };
    pub use rtdb_storage::{replay_serial, Database, History, SerializationGraph};
    pub use rtdb_types::{
        Ceiling, Duration, InstanceId, ItemId, LockMode, Priority, SetBuilder, Step, Tick,
        TransactionSet, TransactionTemplate, TxnId,
    };
}
