//! The transaction sets of the paper's worked examples, with the exact
//! arrival offsets and step durations their narratives use — shared by the
//! integration tests, the `figures` binary and the examples.
//!
//! Item naming: `x = ItemId(0)`, `y = ItemId(1)`, `z = ItemId(2)`.

use rtdb_types::{ItemId, SetBuilder, Step, TransactionSet, TransactionTemplate};

/// Item `x`.
pub const X: ItemId = ItemId(0);
/// Item `y`.
pub const Y: ItemId = ItemId(1);
/// Item `z`.
pub const Z: ItemId = ItemId(2);

/// **Example 1 / Figure 1** (run under RW-PCP): `T1: Read(x)`,
/// `T2: Read(y)`, `T3: Write(x)`; `T3` arrives at 0, `T2` at 1, `T1` at 2.
/// `T3` executes for 3 ticks, the readers for 1 each.
pub fn example1() -> TransactionSet {
    SetBuilder::new()
        .with(
            TransactionTemplate::new("T1", 20, vec![Step::read(X, 1)])
                .with_offset(2)
                .with_instances(1),
        )
        .with(
            TransactionTemplate::new("T2", 20, vec![Step::read(Y, 1)])
                .with_offset(1)
                .with_instances(1),
        )
        .with(TransactionTemplate::new("T3", 20, vec![Step::write(X, 3)]).with_instances(1))
        .build()
        .expect("example 1 is valid")
}

/// **Example 3 / Figures 2–3**: `T1: Read(x), Read(y)` (period 5, arrives
/// at 1, two instances), `T2: Write(x), ..., Write(y), ...` (period 10,
/// arrives at 0, 5 ticks of work).
pub fn example3() -> TransactionSet {
    SetBuilder::new()
        .with(
            TransactionTemplate::new("T1", 5, vec![Step::read(X, 1), Step::read(Y, 1)])
                .with_offset(1)
                .with_instances(2),
        )
        .with(
            TransactionTemplate::new(
                "T2",
                10,
                vec![
                    Step::write(X, 1),
                    Step::compute(2),
                    Step::write(Y, 1),
                    Step::compute(1),
                ],
            )
            .with_instances(1),
        )
        .build()
        .expect("example 3 is valid")
}

/// **Example 4 / Figures 4–5**: `T1: Read(x)` (arrives 4),
/// `T2: Write(y)` (arrives 9), `T3: Read(z), Write(z)` (arrives 1),
/// `T4: Read(y), Write(x), compute` (arrives 0).
pub fn example4() -> TransactionSet {
    SetBuilder::new()
        .with(
            TransactionTemplate::new("T1", 30, vec![Step::read(X, 2)])
                .with_offset(4)
                .with_instances(1),
        )
        .with(
            TransactionTemplate::new("T2", 30, vec![Step::write(Y, 2)])
                .with_offset(9)
                .with_instances(1),
        )
        .with(
            TransactionTemplate::new("T3", 30, vec![Step::read(Z, 1), Step::write(Z, 1)])
                .with_offset(1)
                .with_instances(1),
        )
        .with(
            TransactionTemplate::new(
                "T4",
                30,
                vec![Step::read(Y, 1), Step::write(X, 1), Step::compute(3)],
            )
            .with_instances(1),
        )
        .build()
        .expect("example 4 is valid")
}

/// **Example 5** (the deadlock of the naive condition-(2) protocol):
/// `T_H: Read(y), Write(x)` (arrives 1), `T_L: Read(x), Write(y)`
/// (arrives 0).
pub fn example5() -> TransactionSet {
    SetBuilder::new()
        .with(
            TransactionTemplate::new("TH", 10, vec![Step::read(Y, 1), Step::write(X, 1)])
                .with_offset(1)
                .with_instances(1),
        )
        .with(
            TransactionTemplate::new("TL", 10, vec![Step::read(X, 1), Step::write(Y, 1)])
                .with_instances(1),
        )
        .build()
        .expect("example 5 is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::TxnId;

    #[test]
    fn sets_build_with_descending_priorities() {
        for set in [example1(), example3(), example4(), example5()] {
            let prios: Vec<_> = (0..set.len())
                .map(|i| set.priority_of(TxnId(i as u32)))
                .collect();
            assert!(prios.windows(2).all(|w| w[0] > w[1]), "{prios:?}");
        }
    }

    #[test]
    fn example4_ceilings_match_definitions() {
        let set = example4();
        // Wceil per the paper's definition: highest-priority WRITER.
        assert_eq!(set.wceil(Y), set.priority_of(TxnId(1)).as_ceiling());
        assert_eq!(set.wceil(Z), set.priority_of(TxnId(2)).as_ceiling());
        assert_eq!(set.wceil(X), set.priority_of(TxnId(3)).as_ceiling());
        assert_eq!(set.aceil(X), set.priority_of(TxnId(0)).as_ceiling());
    }
}
